#include "query/classifier.h"

#include <array>
#include <cctype>

#include "common/string_util.h"
#include "query/parser.h"

namespace fungusdb {
namespace {

/// The read-only meta subset. \trace qualifies because the tracer is a
/// process-global, thread-safe facility outside the database state
/// machine; \slowlog does not (it rewrites the database-wide
/// threshold), and \advance/\create/\insert/\attach obviously do not.
constexpr std::array<std::string_view, 8> kReadOnlyMeta = {
    "\\health", "\\now",  "\\metrics", "\\tables",
    "\\rot",    "\\fsck", "\\trace",   "\\storage",
};

std::string_view FirstToken(std::string_view text) {
  size_t end = 0;
  while (end < text.size() && !std::isspace(static_cast<unsigned char>(
                                  text[end]))) {
    ++end;
  }
  return text.substr(0, end);
}

}  // namespace

bool IsReadOnlyMetaCommand(std::string_view command) {
  for (std::string_view meta : kReadOnlyMeta) {
    if (command == meta) return true;
  }
  return false;
}

StatementKind ClassifyQuery(const Query& query,
                            const ClassifyContext& context) {
  if (query.consuming) return StatementKind::kMutating;
  if (context.table_tracks_access &&
      context.table_tracks_access(query.table_name)) {
    return StatementKind::kMutating;
  }
  return StatementKind::kReadOnly;
}

StatementKind ClassifyStatement(std::string_view statement,
                                const ClassifyContext& context) {
  const std::string_view trimmed = StripWhitespace(statement);
  if (trimmed.empty()) return StatementKind::kMutating;
  if (trimmed.front() == '\\') {
    return IsReadOnlyMetaCommand(FirstToken(trimmed))
               ? StatementKind::kReadOnly
               : StatementKind::kMutating;
  }
  // SQL: only a statement the parser provably accepts as a
  // non-consuming SELECT is read-only. INSERT/CREATE/DROP/INTO text
  // (supported or not) fails to parse as a Query and stays with the
  // writer, which owns error reporting in total order.
  const Result<Query> parsed = ParseQuery(trimmed);
  if (!parsed.ok()) return StatementKind::kMutating;
  return ClassifyQuery(parsed.value(), context);
}

}  // namespace fungusdb
