#include "query/binder.h"

namespace fungusdb {
namespace {

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsLogicalOp(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

bool TypeIsNumeric(const std::optional<DataType>& t) {
  return !t.has_value() || IsNumeric(*t);
}

std::string TypeName(const std::optional<DataType>& t) {
  return t.has_value() ? std::string(DataTypeName(*t)) : "null";
}

Result<BoundExpr> BindImpl(const Expr& expr, const Schema& schema,
                           bool inside_aggregate) {
  BoundExpr out;
  out.kind = expr.kind();
  switch (expr.kind()) {
    case Expr::Kind::kLiteral: {
      out.literal = expr.literal();
      if (!out.literal.is_null()) out.result_type = out.literal.type();
      return out;
    }
    case Expr::Kind::kColumnRef: {
      const std::string& name = expr.column_name();
      out.col_name = name;
      if (name == kTimestampColumnName) {
        out.col_source = ColumnSource::kTimestamp;
        out.result_type = DataType::kTimestamp;
        return out;
      }
      if (name == kFreshnessColumnName) {
        out.col_source = ColumnSource::kFreshness;
        out.result_type = DataType::kFloat64;
        return out;
      }
      std::optional<size_t> idx = schema.FindField(name);
      if (!idx.has_value()) {
        return Status::NotFound("no column named '" + name + "'");
      }
      out.col_source = ColumnSource::kUser;
      out.col_index = *idx;
      out.result_type = schema.field(*idx).type;
      return out;
    }
    case Expr::Kind::kBinary: {
      FUNGUSDB_ASSIGN_OR_RETURN(
          BoundExpr lhs, BindImpl(*expr.child(0), schema, inside_aggregate));
      FUNGUSDB_ASSIGN_OR_RETURN(
          BoundExpr rhs, BindImpl(*expr.child(1), schema, inside_aggregate));
      const BinaryOp op = expr.binary_op();
      out.binary_op = op;
      if (IsComparisonOp(op)) {
        const bool comparable =
            !lhs.result_type.has_value() || !rhs.result_type.has_value() ||
            lhs.result_type == rhs.result_type ||
            (IsNumeric(*lhs.result_type) && IsNumeric(*rhs.result_type));
        if (!comparable) {
          return Status::TypeMismatch("cannot compare " +
                                      TypeName(lhs.result_type) + " with " +
                                      TypeName(rhs.result_type));
        }
        out.result_type = DataType::kBool;
      } else if (IsLogicalOp(op)) {
        auto check = [&](const BoundExpr& side) -> Status {
          if (side.result_type.has_value() &&
              side.result_type != DataType::kBool) {
            return Status::TypeMismatch(
                std::string(BinaryOpName(op)) + " requires bool operands, got " +
                TypeName(side.result_type));
          }
          return Status::OK();
        };
        FUNGUSDB_RETURN_IF_ERROR(check(lhs));
        FUNGUSDB_RETURN_IF_ERROR(check(rhs));
        out.result_type = DataType::kBool;
      } else {
        // Arithmetic.
        if (!TypeIsNumeric(lhs.result_type) ||
            !TypeIsNumeric(rhs.result_type)) {
          return Status::TypeMismatch(
              "arithmetic requires numeric operands, got " +
              TypeName(lhs.result_type) + " and " + TypeName(rhs.result_type));
        }
        if (op == BinaryOp::kMod) {
          const bool both_integral =
              (!lhs.result_type.has_value() ||
               *lhs.result_type != DataType::kFloat64) &&
              (!rhs.result_type.has_value() ||
               *rhs.result_type != DataType::kFloat64);
          if (!both_integral) {
            return Status::TypeMismatch("% requires integer operands");
          }
          out.result_type = DataType::kInt64;
        } else if ((lhs.result_type.has_value() &&
                    *lhs.result_type == DataType::kFloat64) ||
                   (rhs.result_type.has_value() &&
                    *rhs.result_type == DataType::kFloat64) ||
                   op == BinaryOp::kDiv) {
          out.result_type = DataType::kFloat64;
        } else {
          out.result_type = DataType::kInt64;
        }
      }
      out.children.push_back(std::move(lhs));
      out.children.push_back(std::move(rhs));
      return out;
    }
    case Expr::Kind::kUnary: {
      FUNGUSDB_ASSIGN_OR_RETURN(
          BoundExpr operand,
          BindImpl(*expr.child(0), schema, inside_aggregate));
      const UnaryOp op = expr.unary_op();
      out.unary_op = op;
      switch (op) {
        case UnaryOp::kNot:
          if (operand.result_type.has_value() &&
              operand.result_type != DataType::kBool) {
            return Status::TypeMismatch("NOT requires a bool operand, got " +
                                        TypeName(operand.result_type));
          }
          out.result_type = DataType::kBool;
          break;
        case UnaryOp::kNeg:
          if (!TypeIsNumeric(operand.result_type)) {
            return Status::TypeMismatch("unary - requires a numeric operand");
          }
          out.result_type = operand.result_type.has_value()
                                ? *operand.result_type
                                : DataType::kInt64;
          if (out.result_type == DataType::kTimestamp) {
            out.result_type = DataType::kInt64;
          }
          // Fold -<literal> into a plain literal so the zone-map pruner
          // and the vectorized kernel see negative constants; mirrors the
          // evaluator's kNeg arithmetic exactly.
          if (operand.kind == Expr::Kind::kLiteral) {
            out.kind = Expr::Kind::kLiteral;
            if (operand.literal.is_null()) {
              out.literal = Value::Null();
              out.result_type = std::nullopt;
            } else if (operand.literal.type() == DataType::kFloat64) {
              out.literal = Value::Float64(-operand.literal.AsFloat64());
            } else {
              FUNGUSDB_ASSIGN_OR_RETURN(double d, operand.literal.ToDouble());
              out.literal = Value::Int64(-static_cast<int64_t>(d));
            }
            return out;
          }
          break;
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          out.result_type = DataType::kBool;
          break;
      }
      out.children.push_back(std::move(operand));
      return out;
    }
    case Expr::Kind::kFunction: {
      out.scalar_fn = expr.scalar_fn();
      std::vector<BoundExpr> args;
      for (const ExprPtr& child : expr.children()) {
        FUNGUSDB_ASSIGN_OR_RETURN(
            BoundExpr arg, BindImpl(*child, schema, inside_aggregate));
        args.push_back(std::move(arg));
      }
      auto arity = [&](size_t n) -> Status {
        if (args.size() != n) {
          return Status::InvalidArgument(
              std::string(ScalarFnName(out.scalar_fn)) + " takes " +
              std::to_string(n) + " argument(s), got " +
              std::to_string(args.size()));
        }
        return Status::OK();
      };
      auto require_numeric = [&](size_t i) -> Status {
        if (!TypeIsNumeric(args[i].result_type)) {
          return Status::TypeMismatch(
              std::string(ScalarFnName(out.scalar_fn)) +
              " requires a numeric argument");
        }
        return Status::OK();
      };
      auto require_string = [&](size_t i) -> Status {
        if (args[i].result_type.has_value() &&
            *args[i].result_type != DataType::kString) {
          return Status::TypeMismatch(
              std::string(ScalarFnName(out.scalar_fn)) +
              " requires a string argument");
        }
        return Status::OK();
      };
      switch (out.scalar_fn) {
        case ScalarFn::kAbs:
          FUNGUSDB_RETURN_IF_ERROR(arity(1));
          FUNGUSDB_RETURN_IF_ERROR(require_numeric(0));
          out.result_type =
              args[0].result_type.value_or(DataType::kInt64);
          if (out.result_type == DataType::kTimestamp) {
            out.result_type = DataType::kInt64;
          }
          break;
        case ScalarFn::kFloor:
        case ScalarFn::kCeil:
        case ScalarFn::kRound:
          FUNGUSDB_RETURN_IF_ERROR(arity(1));
          FUNGUSDB_RETURN_IF_ERROR(require_numeric(0));
          out.result_type = DataType::kFloat64;
          break;
        case ScalarFn::kLength:
          FUNGUSDB_RETURN_IF_ERROR(arity(1));
          FUNGUSDB_RETURN_IF_ERROR(require_string(0));
          out.result_type = DataType::kInt64;
          break;
        case ScalarFn::kLower:
        case ScalarFn::kUpper:
          FUNGUSDB_RETURN_IF_ERROR(arity(1));
          FUNGUSDB_RETURN_IF_ERROR(require_string(0));
          out.result_type = DataType::kString;
          break;
        case ScalarFn::kTimeBucket:
          FUNGUSDB_RETURN_IF_ERROR(arity(2));
          FUNGUSDB_RETURN_IF_ERROR(require_numeric(0));
          FUNGUSDB_RETURN_IF_ERROR(require_numeric(1));
          if (args[1].result_type == DataType::kFloat64) {
            return Status::TypeMismatch(
                "time_bucket width must be an integer duration in "
                "microseconds");
          }
          out.result_type = DataType::kTimestamp;
          break;
      }
      out.children = std::move(args);
      return out;
    }
    case Expr::Kind::kAggregate: {
      if (inside_aggregate) {
        return Status::InvalidArgument("aggregates cannot be nested");
      }
      out.agg_fn = expr.agg_fn();
      if (!expr.agg_is_star()) {
        FUNGUSDB_ASSIGN_OR_RETURN(BoundExpr arg,
                                  BindImpl(*expr.child(0), schema, true));
        switch (out.agg_fn) {
          case AggFn::kCount:
            out.result_type = DataType::kInt64;
            break;
          case AggFn::kFCount:
            out.result_type = DataType::kFloat64;
            break;
          case AggFn::kFSum:
          case AggFn::kFAvg:
            if (!TypeIsNumeric(arg.result_type)) {
              return Status::TypeMismatch(
                  std::string(AggFnName(out.agg_fn)) +
                  " requires a numeric argument");
            }
            out.result_type = DataType::kFloat64;
            break;
          case AggFn::kSum:
            if (!TypeIsNumeric(arg.result_type)) {
              return Status::TypeMismatch("SUM requires a numeric argument");
            }
            out.result_type = (arg.result_type.has_value() &&
                               *arg.result_type == DataType::kFloat64)
                                  ? DataType::kFloat64
                                  : DataType::kInt64;
            break;
          case AggFn::kAvg:
            if (!TypeIsNumeric(arg.result_type)) {
              return Status::TypeMismatch("AVG requires a numeric argument");
            }
            out.result_type = DataType::kFloat64;
            break;
          case AggFn::kMin:
          case AggFn::kMax:
            out.result_type = arg.result_type.has_value()
                                  ? *arg.result_type
                                  : DataType::kInt64;
            break;
        }
        out.children.push_back(std::move(arg));
      } else {
        if (out.agg_fn != AggFn::kCount && out.agg_fn != AggFn::kFCount) {
          return Status::InvalidArgument(
              "'*' argument is only valid for COUNT and FCOUNT");
        }
        out.result_type = out.agg_fn == AggFn::kCount ? DataType::kInt64
                                                      : DataType::kFloat64;
      }
      return out;
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace

Result<BoundExpr> Bind(const Expr& expr, const Schema& schema) {
  return BindImpl(expr, schema, false);
}

}  // namespace fungusdb
