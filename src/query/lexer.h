#ifndef FUNGUSDB_QUERY_LEXER_H_
#define FUNGUSDB_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fungusdb {

enum class TokenType {
  kKeyword,     // SELECT, FROM, WHERE, ... (uppercased in `text`)
  kIdentifier,  // table / column names (case preserved)
  kInteger,     // 42
  kFloat,       // 3.14, 1e-3
  kString,      // 'abc' (text holds the unquoted, unescaped payload)
  kOperator,    // = != <> < <= > >= + - * / % ( ) , .
  kStar,        // * (only when used as SELECT * / COUNT(*))
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;  // byte offset in the input, for error messages

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOperator(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Splits a statement into tokens. Keywords are recognized
/// case-insensitively and normalized to upper case; `*` is emitted as
/// kStar. Fails with ParseError on malformed literals or stray bytes.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_LEXER_H_
