#ifndef FUNGUSDB_QUERY_QUERY_H_
#define FUNGUSDB_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "query/expr.h"

namespace fungusdb {

/// One SELECT-list entry; `alias` may be empty (a name is derived from
/// the expression).
struct SelectItem {
  ExprPtr expr;
  std::string alias;
};

struct OrderBy {
  std::string column;  // output column name
  bool descending = false;
};

/// The paper's A = Q(T, R, P): target expressions T (select list), the
/// relation R (table_name), and predicate P (where). When `consuming` is
/// true the query follows the second natural law — every tuple that
/// entered the answer set is removed from R as part of execution.
struct Query {
  bool consuming = false;
  /// SELECT DISTINCT: duplicate output rows are collapsed (after
  /// projection/aggregation, before ORDER BY and LIMIT).
  bool distinct = false;
  std::vector<SelectItem> items;  // empty => SELECT *
  std::string table_name;
  ExprPtr where;  // null => all live tuples match
  std::vector<std::string> group_by;
  std::optional<OrderBy> order_by;
  std::optional<uint64_t> limit;

  /// Round-trippable SQL-ish rendering.
  std::string ToString() const;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_QUERY_H_
