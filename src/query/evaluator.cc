#include "query/evaluator.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <vector>

namespace fungusdb {
namespace {

Result<Value> EvalBinary(const BoundExpr& expr, const Value& lhs,
                         const Value& rhs) {
  const BinaryOp op = expr.binary_op;
  switch (op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      // Three-valued logic.
      auto truth = [](const Value& v) -> int {
        return v.is_null() ? -1 : (v.AsBool() ? 1 : 0);
      };
      const int a = truth(lhs);
      const int b = truth(rhs);
      if (op == BinaryOp::kAnd) {
        if (a == 0 || b == 0) return Value::Bool(false);
        if (a == -1 || b == -1) return Value::Null();
        return Value::Bool(true);
      }
      if (a == 1 || b == 1) return Value::Bool(true);
      if (a == -1 || b == -1) return Value::Null();
      return Value::Bool(false);
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      FUNGUSDB_ASSIGN_OR_RETURN(int cmp, lhs.Compare(rhs));
      switch (op) {
        case BinaryOp::kEq:
          return Value::Bool(cmp == 0);
        case BinaryOp::kNe:
          return Value::Bool(cmp != 0);
        case BinaryOp::kLt:
          return Value::Bool(cmp < 0);
        case BinaryOp::kLe:
          return Value::Bool(cmp <= 0);
        case BinaryOp::kGt:
          return Value::Bool(cmp > 0);
        default:
          return Value::Bool(cmp >= 0);
      }
    }
    default:
      break;
  }

  // Arithmetic.
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (op == BinaryOp::kMod) {
    const int64_t divisor = rhs.type() == DataType::kTimestamp
                                ? rhs.AsTimestamp()
                                : rhs.AsInt64();
    const int64_t dividend = lhs.type() == DataType::kTimestamp
                                 ? lhs.AsTimestamp()
                                 : lhs.AsInt64();
    if (divisor == 0) return Status::InvalidArgument("modulo by zero");
    return Value::Int64(dividend % divisor);
  }
  if (expr.result_type == DataType::kInt64) {
    // Exact integer arithmetic (division is typed float64 by the binder).
    auto as_int = [](const Value& v) {
      return v.type() == DataType::kTimestamp ? v.AsTimestamp() : v.AsInt64();
    };
    const int64_t a = as_int(lhs);
    const int64_t b = as_int(rhs);
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int64(a + b);
      case BinaryOp::kSub:
        return Value::Int64(a - b);
      case BinaryOp::kMul:
        return Value::Int64(a * b);
      default:
        return Status::Internal("unexpected integer binary op");
    }
  }
  FUNGUSDB_ASSIGN_OR_RETURN(double a, lhs.ToDouble());
  FUNGUSDB_ASSIGN_OR_RETURN(double b, rhs.ToDouble());
  double result = 0.0;
  switch (op) {
    case BinaryOp::kAdd:
      result = a + b;
      break;
    case BinaryOp::kSub:
      result = a - b;
      break;
    case BinaryOp::kMul:
      result = a * b;
      break;
    case BinaryOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      result = a / b;
      break;
    default:
      return Status::Internal("unexpected binary op");
  }
  return Value::Float64(result);
}

}  // namespace

Result<Value> EvalScalar(const BoundExpr& expr, const Table& table,
                         RowId row) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kColumnRef:
      switch (expr.col_source) {
        case ColumnSource::kTimestamp: {
          FUNGUSDB_ASSIGN_OR_RETURN(Timestamp t, table.InsertTime(row));
          return Value::TimestampVal(t);
        }
        case ColumnSource::kFreshness:
          return Value::Float64(table.Freshness(row));
        case ColumnSource::kUser:
          return table.GetValue(row, expr.col_index);
      }
      return Status::Internal("unhandled column source");
    case Expr::Kind::kBinary: {
      // Short-circuit AND/OR where one side already decides the result.
      if (expr.binary_op == BinaryOp::kAnd ||
          expr.binary_op == BinaryOp::kOr) {
        FUNGUSDB_ASSIGN_OR_RETURN(Value lhs,
                                  EvalScalar(expr.children[0], table, row));
        if (!lhs.is_null()) {
          const bool decided = expr.binary_op == BinaryOp::kAnd
                                   ? !lhs.AsBool()
                                   : lhs.AsBool();
          if (decided) return lhs;
        }
        FUNGUSDB_ASSIGN_OR_RETURN(Value rhs,
                                  EvalScalar(expr.children[1], table, row));
        return EvalBinary(expr, lhs, rhs);
      }
      FUNGUSDB_ASSIGN_OR_RETURN(Value lhs,
                                EvalScalar(expr.children[0], table, row));
      FUNGUSDB_ASSIGN_OR_RETURN(Value rhs,
                                EvalScalar(expr.children[1], table, row));
      return EvalBinary(expr, lhs, rhs);
    }
    case Expr::Kind::kUnary: {
      FUNGUSDB_ASSIGN_OR_RETURN(Value operand,
                                EvalScalar(expr.children[0], table, row));
      switch (expr.unary_op) {
        case UnaryOp::kNot:
          if (operand.is_null()) return Value::Null();
          return Value::Bool(!operand.AsBool());
        case UnaryOp::kNeg: {
          if (operand.is_null()) return Value::Null();
          if (operand.type() == DataType::kFloat64) {
            return Value::Float64(-operand.AsFloat64());
          }
          FUNGUSDB_ASSIGN_OR_RETURN(double d, operand.ToDouble());
          return Value::Int64(-static_cast<int64_t>(d));
        }
        case UnaryOp::kIsNull:
          return Value::Bool(operand.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!operand.is_null());
      }
      return Status::Internal("unhandled unary op");
    }
    case Expr::Kind::kFunction: {
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const BoundExpr& child : expr.children) {
        FUNGUSDB_ASSIGN_OR_RETURN(Value v, EvalScalar(child, table, row));
        if (v.is_null()) return Value::Null();  // strict null propagation
        args.push_back(std::move(v));
      }
      switch (expr.scalar_fn) {
        case ScalarFn::kAbs:
          if (args[0].type() == DataType::kFloat64) {
            return Value::Float64(std::fabs(args[0].AsFloat64()));
          }
          return Value::Int64(std::llabs(
              args[0].type() == DataType::kTimestamp
                  ? args[0].AsTimestamp()
                  : args[0].AsInt64()));
        case ScalarFn::kFloor: {
          FUNGUSDB_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
          return Value::Float64(std::floor(d));
        }
        case ScalarFn::kCeil: {
          FUNGUSDB_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
          return Value::Float64(std::ceil(d));
        }
        case ScalarFn::kRound: {
          FUNGUSDB_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
          return Value::Float64(std::round(d));
        }
        case ScalarFn::kLength:
          return Value::Int64(
              static_cast<int64_t>(args[0].AsString().size()));
        case ScalarFn::kLower: {
          std::string s = args[0].AsString();
          for (char& c : s) {
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
          }
          return Value::String(std::move(s));
        }
        case ScalarFn::kUpper: {
          std::string s = args[0].AsString();
          for (char& c : s) {
            c = static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
          }
          return Value::String(std::move(s));
        }
        case ScalarFn::kTimeBucket: {
          const int64_t ts = args[0].type() == DataType::kTimestamp
                                 ? args[0].AsTimestamp()
                                 : args[0].AsInt64();
          const int64_t width = args[1].type() == DataType::kTimestamp
                                    ? args[1].AsTimestamp()
                                    : args[1].AsInt64();
          if (width <= 0) {
            return Status::InvalidArgument(
                "time_bucket width must be positive");
          }
          // Floor division so negative timestamps bucket consistently.
          int64_t bucket = ts / width;
          if (ts % width != 0 && ts < 0) --bucket;
          return Value::TimestampVal(bucket * width);
        }
      }
      return Status::Internal("unhandled scalar function");
    }
    case Expr::Kind::kAggregate:
      return Status::Internal(
          "aggregate expression reached the scalar evaluator");
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const BoundExpr& expr, const Table& table,
                           RowId row) {
  FUNGUSDB_ASSIGN_OR_RETURN(Value v, EvalScalar(expr, table, row));
  return !v.is_null() && v.AsBool();
}

}  // namespace fungusdb
