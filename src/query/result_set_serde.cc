#include "query/result_set_serde.h"

#include "storage/value_serde.h"

namespace fungusdb {
namespace {

// A decoded answer may not claim more columns than any sane query
// produces; rows are bounded by the payload size itself (every row
// costs at least one byte per column).
constexpr uint64_t kMaxColumns = 1u << 16;

}  // namespace

void SerializeResultSet(const ResultSet& result, BufferWriter& out) {
  out.WriteU32(static_cast<uint32_t>(result.column_names.size()));
  for (const std::string& name : result.column_names) {
    out.WriteString(name);
  }
  out.WriteU64(result.rows.size());
  for (const std::vector<Value>& row : result.rows) {
    for (const Value& value : row) WriteValue(out, value);
  }
  out.WriteU64(result.stats.rows_scanned);
  out.WriteU64(result.stats.rows_matched);
  out.WriteU64(result.stats.rows_consumed);
}

Result<ResultSet> DeserializeResultSet(BufferReader& in) {
  ResultSet result;
  FUNGUSDB_ASSIGN_OR_RETURN(uint32_t num_columns, in.ReadU32());
  if (num_columns > kMaxColumns) {
    return Status::WireFormat("result set claims " +
                              std::to_string(num_columns) + " columns");
  }
  result.column_names.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    FUNGUSDB_ASSIGN_OR_RETURN(std::string name, in.ReadString());
    result.column_names.push_back(std::move(name));
  }
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_rows, in.ReadU64());
  // Every encoded value is at least one tag byte, so a row count the
  // remaining bytes cannot hold is corrupt — reject before reserving.
  if (num_columns == 0 && num_rows != 0) {
    return Status::WireFormat("result set has rows but no columns");
  }
  if (num_columns > 0 && num_rows > in.remaining() / num_columns) {
    return Status::WireFormat("result set claims " +
                              std::to_string(num_rows) +
                              " rows but the payload is smaller");
  }
  result.rows.reserve(num_rows);
  for (uint64_t r = 0; r < num_rows; ++r) {
    std::vector<Value> row;
    row.reserve(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      FUNGUSDB_ASSIGN_OR_RETURN(Value value, ReadValue(in));
      row.push_back(std::move(value));
    }
    result.rows.push_back(std::move(row));
  }
  FUNGUSDB_ASSIGN_OR_RETURN(result.stats.rows_scanned, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(result.stats.rows_matched, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(result.stats.rows_consumed, in.ReadU64());
  return result;
}

}  // namespace fungusdb
