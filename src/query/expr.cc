#include "query/expr.h"

namespace fungusdb {

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
  }
  return "?";
}

std::string_view UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "NOT";
    case UnaryOp::kNeg:
      return "-";
    case UnaryOp::kIsNull:
      return "IS NULL";
    case UnaryOp::kIsNotNull:
      return "IS NOT NULL";
  }
  return "?";
}

std::string_view AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kFCount:
      return "FCOUNT";
    case AggFn::kFSum:
      return "FSUM";
    case AggFn::kFAvg:
      return "FAVG";
  }
  return "?";
}

ExprPtr Expr::Literal(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kLiteral));
  e->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kColumnRef));
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kBinary));
  e->binary_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kUnary));
  e->unary_op_ = op;
  e->children_ = {std::move(operand)};
  return e;
}

std::string_view ScalarFnName(ScalarFn fn) {
  switch (fn) {
    case ScalarFn::kAbs:
      return "abs";
    case ScalarFn::kFloor:
      return "floor";
    case ScalarFn::kCeil:
      return "ceil";
    case ScalarFn::kRound:
      return "round";
    case ScalarFn::kLength:
      return "length";
    case ScalarFn::kLower:
      return "lower";
    case ScalarFn::kUpper:
      return "upper";
    case ScalarFn::kTimeBucket:
      return "time_bucket";
  }
  return "?";
}

ExprPtr Expr::Function(ScalarFn fn, std::vector<ExprPtr> args) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kFunction));
  e->scalar_fn_ = fn;
  e->children_ = std::move(args);
  return e;
}

ExprPtr Expr::Aggregate(AggFn fn, ExprPtr arg) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kAggregate));
  e->agg_fn_ = fn;
  if (arg != nullptr) e->children_ = {std::move(arg)};
  return e;
}

bool Expr::ContainsAggregate() const {
  if (kind_ == Kind::kAggregate) return true;
  for (const ExprPtr& c : children_) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kColumnRef:
      return column_name_;
    case Kind::kBinary:
      return "(" + children_[0]->ToString() + " " +
             std::string(BinaryOpName(binary_op_)) + " " +
             children_[1]->ToString() + ")";
    case Kind::kUnary:
      if (unary_op_ == UnaryOp::kIsNull ||
          unary_op_ == UnaryOp::kIsNotNull) {
        return "(" + children_[0]->ToString() + " " +
               std::string(UnaryOpName(unary_op_)) + ")";
      }
      return "(" + std::string(UnaryOpName(unary_op_)) + " " +
             children_[0]->ToString() + ")";
    case Kind::kAggregate:
      return std::string(AggFnName(agg_fn_)) + "(" +
             (agg_is_star() ? "*" : children_[0]->ToString()) + ")";
    case Kind::kFunction: {
      std::string out(ScalarFnName(scalar_fn_));
      out += "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

ExprPtr Lit(int64_t v) { return Expr::Literal(Value::Int64(v)); }
ExprPtr Lit(double v) { return Expr::Literal(Value::Float64(v)); }
ExprPtr Lit(const char* v) { return Expr::Literal(Value::String(v)); }
ExprPtr Lit(std::string v) {
  return Expr::Literal(Value::String(std::move(v)));
}
ExprPtr Lit(bool v) { return Expr::Literal(Value::Bool(v)); }
ExprPtr LitTimestamp(Timestamp t) {
  return Expr::Literal(Value::TimestampVal(t));
}
ExprPtr LitNull() { return Expr::Literal(Value::Null()); }
ExprPtr Col(std::string name) { return Expr::Column(std::move(name)); }

ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kEq, std::move(lhs), std::move(rhs));
}
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kNe, std::move(lhs), std::move(rhs));
}
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kLt, std::move(lhs), std::move(rhs));
}
ExprPtr Le(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kLe, std::move(lhs), std::move(rhs));
}
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kGt, std::move(lhs), std::move(rhs));
}
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kGe, std::move(lhs), std::move(rhs));
}
ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
}
ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
}
ExprPtr Add(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
}
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
}
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
}
ExprPtr Div(ExprPtr lhs, ExprPtr rhs) {
  return Expr::Binary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
}
ExprPtr Not(ExprPtr operand) {
  return Expr::Unary(UnaryOp::kNot, std::move(operand));
}
ExprPtr IsNull(ExprPtr operand) {
  return Expr::Unary(UnaryOp::kIsNull, std::move(operand));
}
ExprPtr IsNotNull(ExprPtr operand) {
  return Expr::Unary(UnaryOp::kIsNotNull, std::move(operand));
}

}  // namespace fungusdb
