#ifndef FUNGUSDB_QUERY_VECTOR_EVAL_H_
#define FUNGUSDB_QUERY_VECTOR_EVAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "query/binder.h"
#include "storage/segment.h"

namespace fungusdb {

/// Batch-at-a-time predicate kernel. Compile() lowers a bound WHERE tree
/// into a flat post-order program over numeric column spans; Match()
/// runs it over one segment in fixed-size batches, producing a selection
/// vector of live, matching row offsets — no per-row Value
/// materialization anywhere on the hot path.
///
/// Coverage: comparisons (=, !=, <, <=, >, >=) between numeric operands
/// (int64 / float64 / timestamp user columns, `__ts`, `__freshness`,
/// numeric or NULL literals), string-column = / != string-literal,
/// IS [NOT] NULL over numeric operands, boolean and NULL literals, and
/// AND / OR / NOT combinations thereof. Anything else makes Compile()
/// return nullopt and the engine falls back to the row-at-a-time tree
/// walker.
///
/// Both storage tiers run through the same program via the segment's
/// decode-to-scratch API. Frozen segments additionally get two
/// encoded-domain fast paths that never decode: comparison leaves over
/// FOR-packed int spans are decided for the whole segment from the
/// packed [base, base + max_delta] range when possible, and string
/// equality compares dictionary codes run by run. Batches with no live
/// rows (answered by the RLE liveness runs) are skipped outright.
///
/// Semantics match the tree walker bit for bit:
///  * comparisons happen in double space (int64/timestamp converted),
///    with Value::Compare's trichotomy — so a NaN operand compares
///    "equal" to everything (=, <=, >= accept it; !=, <, > reject);
///  * a NULL operand makes the comparison UNKNOWN;
///  * AND / OR / NOT follow three-valued (Kleene) logic;
///  * a row matches when the predicate is TRUE (not UNKNOWN).
class VectorPredicate {
 public:
  /// Rows evaluated per inner-loop batch.
  static constexpr size_t kBatchSize = 1024;

  /// Per-thread evaluation buffers, reused across batches and segments.
  /// Morsel-parallel scans give each worker its own Scratch.
  struct Scratch {
    std::vector<uint8_t> truth;   // num_nodes x kBatchSize
    std::vector<uint8_t> known;   // num_nodes x kBatchSize
    std::vector<double> vals;     // 2 x kBatchSize operand staging
    std::vector<uint8_t> nulls;   // 2 x kBatchSize operand staging
    std::vector<uint8_t> alive;   // kBatchSize liveness staging
    /// Batches decoded from frozen segments (feeds the
    /// fungusdb.storage.decode_batches metric).
    uint64_t decoded_batches = 0;
  };

  /// Lowers `expr` (a boolean-typed bound expression) or returns nullopt
  /// if any sub-expression is outside the vectorizable subset.
  static std::optional<VectorPredicate> Compile(const BoundExpr& expr);

  /// Appends to `out` the in-segment offsets of all LIVE rows of `seg`
  /// for which the predicate is TRUE, in offset order.
  void Match(const Segment& seg, Scratch& scratch,
             std::vector<uint32_t>& out) const;

 private:
  enum class OperandKind : uint8_t {
    kNullLit,       // literal NULL: every cell null
    kConst,         // numeric literal, as double
    kTs,            // system insertion-time vector
    kFreshness,     // system freshness vector
    kInt64Col,      // user column, by index
    kFloat64Col,
    kTimestampCol,
  };

  struct Operand {
    OperandKind kind = OperandKind::kNullLit;
    double constant = 0.0;
    size_t col = 0;
  };

  enum class NodeKind : uint8_t {
    kConstBool,  // truth/known fixed at compile time
    kIsNull,     // lhs operand IS NULL
    kCompare,    // lhs <cmp_op> rhs
    kStringEq,   // str_col == str_lit (!= compiles to kNot over this)
    kNot,        // child0
    kAnd,        // child0, child1
    kOr,         // child0, child1
  };

  struct Node {
    NodeKind kind = NodeKind::kConstBool;
    BinaryOp cmp_op = BinaryOp::kEq;
    bool const_truth = false;
    bool const_known = false;
    Operand lhs;
    Operand rhs;
    int child0 = -1;
    int child1 = -1;
    size_t str_col = 0;   // kStringEq
    std::string str_lit;  // kStringEq
  };

  /// Per-node whole-segment decisions for a frozen segment: 1 = TRUE
  /// for every row, 0 = FALSE for every row, -1 = must evaluate.
  /// Derived from the encoded metadata alone (FOR range of packed int
  /// spans, dictionary membership) — no decoding, no thawing.
  std::vector<int8_t> DecideFrozenLeaves(const Segment& seg) const;

  static std::optional<Operand> CompileOperand(const BoundExpr& expr);
  /// Appends nodes post-order; returns the root index or nullopt.
  static std::optional<int> CompileNode(const BoundExpr& expr,
                                        std::vector<Node>& nodes);

  void MaterializeOperand(const Operand& op, const Segment& seg,
                          size_t base, size_t n, const uint8_t* alive,
                          double* vals, uint8_t* nulls) const;
  void EvalBatch(const Segment& seg, size_t base, size_t n,
                 const uint8_t* alive, const int8_t* decided,
                 Scratch& scratch) const;

  std::vector<Node> nodes_;  // post-order; back() is the root
};

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_VECTOR_EVAL_H_
