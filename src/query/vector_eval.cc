#include "query/vector_eval.h"

#include <algorithm>
#include <cstring>

namespace fungusdb {

std::optional<VectorPredicate::Operand> VectorPredicate::CompileOperand(
    const BoundExpr& expr) {
  Operand op;
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      if (expr.literal.is_null()) {
        op.kind = OperandKind::kNullLit;
        return op;
      }
      op.kind = OperandKind::kConst;
      switch (expr.literal.type()) {
        case DataType::kInt64:
          op.constant = static_cast<double>(expr.literal.AsInt64());
          return op;
        case DataType::kFloat64:
          op.constant = expr.literal.AsFloat64();
          return op;
        case DataType::kTimestamp:
          op.constant = static_cast<double>(expr.literal.AsTimestamp());
          return op;
        default:
          return std::nullopt;
      }
    case Expr::Kind::kColumnRef:
      switch (expr.col_source) {
        case ColumnSource::kTimestamp:
          op.kind = OperandKind::kTs;
          return op;
        case ColumnSource::kFreshness:
          op.kind = OperandKind::kFreshness;
          return op;
        case ColumnSource::kUser:
          op.col = expr.col_index;
          if (expr.result_type == DataType::kInt64) {
            op.kind = OperandKind::kInt64Col;
            return op;
          }
          if (expr.result_type == DataType::kFloat64) {
            op.kind = OperandKind::kFloat64Col;
            return op;
          }
          if (expr.result_type == DataType::kTimestamp) {
            op.kind = OperandKind::kTimestampCol;
            return op;
          }
          return std::nullopt;
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

std::optional<int> VectorPredicate::CompileNode(const BoundExpr& expr,
                                                std::vector<Node>& nodes) {
  Node node;
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      // WHERE true / WHERE NULL. The walker treats NULL as "not TRUE".
      if (expr.literal.is_null()) {
        node.kind = NodeKind::kConstBool;
        node.const_known = false;
      } else if (expr.literal.type() == DataType::kBool) {
        node.kind = NodeKind::kConstBool;
        node.const_truth = expr.literal.AsBool();
        node.const_known = true;
      } else {
        return std::nullopt;
      }
      nodes.push_back(node);
      return static_cast<int>(nodes.size()) - 1;
    case Expr::Kind::kUnary:
      switch (expr.unary_op) {
        case UnaryOp::kNot: {
          auto child = CompileNode(expr.children[0], nodes);
          if (!child) return std::nullopt;
          node.kind = NodeKind::kNot;
          node.child0 = *child;
          nodes.push_back(node);
          return static_cast<int>(nodes.size()) - 1;
        }
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull: {
          auto operand = CompileOperand(expr.children[0]);
          if (!operand) return std::nullopt;
          node.kind = NodeKind::kIsNull;
          node.lhs = *operand;
          nodes.push_back(node);
          int idx = static_cast<int>(nodes.size()) - 1;
          if (expr.unary_op == UnaryOp::kIsNotNull) {
            Node neg;
            neg.kind = NodeKind::kNot;
            neg.child0 = idx;
            nodes.push_back(neg);
            idx = static_cast<int>(nodes.size()) - 1;
          }
          return idx;
        }
        default:
          return std::nullopt;
      }
    case Expr::Kind::kBinary:
      switch (expr.binary_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          auto a = CompileNode(expr.children[0], nodes);
          if (!a) return std::nullopt;
          auto b = CompileNode(expr.children[1], nodes);
          if (!b) return std::nullopt;
          node.kind = expr.binary_op == BinaryOp::kAnd ? NodeKind::kAnd
                                                       : NodeKind::kOr;
          node.child0 = *a;
          node.child1 = *b;
          nodes.push_back(node);
          return static_cast<int>(nodes.size()) - 1;
        }
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          auto lhs = CompileOperand(expr.children[0]);
          if (!lhs) return std::nullopt;
          auto rhs = CompileOperand(expr.children[1]);
          if (!rhs) return std::nullopt;
          node.kind = NodeKind::kCompare;
          node.cmp_op = expr.binary_op;
          node.lhs = *lhs;
          node.rhs = *rhs;
          nodes.push_back(node);
          return static_cast<int>(nodes.size()) - 1;
        }
        default:
          return std::nullopt;
      }
    default:
      return std::nullopt;
  }
}

std::optional<VectorPredicate> VectorPredicate::Compile(
    const BoundExpr& expr) {
  VectorPredicate pred;
  auto root = CompileNode(expr, pred.nodes_);
  if (!root) return std::nullopt;
  return pred;
}

void VectorPredicate::MaterializeOperand(const Operand& op,
                                         const Segment& seg, size_t base,
                                         size_t n, double* vals,
                                         uint8_t* nulls) const {
  switch (op.kind) {
    case OperandKind::kNullLit:
      std::memset(nulls, 1, n);
      return;
    case OperandKind::kConst:
      std::fill(vals, vals + n, op.constant);
      std::memset(nulls, 0, n);
      return;
    case OperandKind::kTs: {
      const Timestamp* ts = seg.ts_data() + base;
      for (size_t i = 0; i < n; ++i) vals[i] = static_cast<double>(ts[i]);
      std::memset(nulls, 0, n);
      return;
    }
    case OperandKind::kFreshness:
      std::memcpy(vals, seg.freshness_data() + base, n * sizeof(double));
      // The stored vector is "as of the last materialization"; replay
      // pending uniform decrements in fold order so the kernel compares
      // the same effective values Segment::Freshness reconstructs. Dead
      // rows pick up garbage here, but Match's alive mask drops them.
      for (const double d : seg.pending_decay()) {
        for (size_t i = 0; i < n; ++i) vals[i] -= d;
      }
      std::memset(nulls, 0, n);
      return;
    case OperandKind::kInt64Col: {
      const auto& col = static_cast<const Int64Column&>(seg.column(op.col));
      const int64_t* data = col.data().data() + base;
      for (size_t i = 0; i < n; ++i) vals[i] = static_cast<double>(data[i]);
      if (col.null_count() == 0) {
        std::memset(nulls, 0, n);
      } else {
        for (size_t i = 0; i < n; ++i) nulls[i] = col.IsNull(base + i);
      }
      return;
    }
    case OperandKind::kFloat64Col: {
      const auto& col =
          static_cast<const Float64Column&>(seg.column(op.col));
      std::memcpy(vals, col.data().data() + base, n * sizeof(double));
      if (col.null_count() == 0) {
        std::memset(nulls, 0, n);
      } else {
        for (size_t i = 0; i < n; ++i) nulls[i] = col.IsNull(base + i);
      }
      return;
    }
    case OperandKind::kTimestampCol: {
      const auto& col =
          static_cast<const TimestampColumn&>(seg.column(op.col));
      const Timestamp* data = col.data().data() + base;
      for (size_t i = 0; i < n; ++i) vals[i] = static_cast<double>(data[i]);
      if (col.null_count() == 0) {
        std::memset(nulls, 0, n);
      } else {
        for (size_t i = 0; i < n; ++i) nulls[i] = col.IsNull(base + i);
      }
      return;
    }
  }
}

void VectorPredicate::EvalBatch(const Segment& seg, size_t base, size_t n,
                                Scratch& scratch) const {
  for (size_t idx = 0; idx < nodes_.size(); ++idx) {
    const Node& node = nodes_[idx];
    uint8_t* t = scratch.truth.data() + idx * kBatchSize;
    uint8_t* k = scratch.known.data() + idx * kBatchSize;
    switch (node.kind) {
      case NodeKind::kConstBool:
        std::memset(t, node.const_truth ? 1 : 0, n);
        std::memset(k, node.const_known ? 1 : 0, n);
        break;
      case NodeKind::kIsNull: {
        double* lv = scratch.vals.data();
        uint8_t* ln = scratch.nulls.data();
        MaterializeOperand(node.lhs, seg, base, n, lv, ln);
        std::memcpy(t, ln, n);
        std::memset(k, 1, n);
        break;
      }
      case NodeKind::kCompare: {
        double* lv = scratch.vals.data();
        double* rv = scratch.vals.data() + kBatchSize;
        uint8_t* ln = scratch.nulls.data();
        uint8_t* rn = scratch.nulls.data() + kBatchSize;
        MaterializeOperand(node.lhs, seg, base, n, lv, ln);
        MaterializeOperand(node.rhs, seg, base, n, rv, rn);
        // Value::Compare trichotomy: NaN is neither < nor >, so cmp == 0
        // and NaN "equals" everything — preserved deliberately.
        auto run = [&](auto accept) {
          for (size_t i = 0; i < n; ++i) {
            if (ln[i] | rn[i]) {
              t[i] = 0;
              k[i] = 0;
              continue;
            }
            const double x = lv[i];
            const double y = rv[i];
            const int cmp = x < y ? -1 : (x > y ? 1 : 0);
            t[i] = accept(cmp) ? 1 : 0;
            k[i] = 1;
          }
        };
        switch (node.cmp_op) {
          case BinaryOp::kEq:
            run([](int c) { return c == 0; });
            break;
          case BinaryOp::kNe:
            run([](int c) { return c != 0; });
            break;
          case BinaryOp::kLt:
            run([](int c) { return c < 0; });
            break;
          case BinaryOp::kLe:
            run([](int c) { return c <= 0; });
            break;
          case BinaryOp::kGt:
            run([](int c) { return c > 0; });
            break;
          default:
            run([](int c) { return c >= 0; });
            break;
        }
        break;
      }
      case NodeKind::kNot: {
        const uint8_t* ct =
            scratch.truth.data() + node.child0 * kBatchSize;
        const uint8_t* ck =
            scratch.known.data() + node.child0 * kBatchSize;
        for (size_t i = 0; i < n; ++i) t[i] = ct[i] ^ 1;
        std::memcpy(k, ck, n);
        break;
      }
      case NodeKind::kAnd: {
        const uint8_t* at =
            scratch.truth.data() + node.child0 * kBatchSize;
        const uint8_t* ak =
            scratch.known.data() + node.child0 * kBatchSize;
        const uint8_t* bt =
            scratch.truth.data() + node.child1 * kBatchSize;
        const uint8_t* bk =
            scratch.known.data() + node.child1 * kBatchSize;
        // Kleene AND: FALSE dominates UNKNOWN.
        for (size_t i = 0; i < n; ++i) {
          t[i] = at[i] & bt[i];
          k[i] = (ak[i] & bk[i]) | (ak[i] & (at[i] ^ 1)) |
                 (bk[i] & (bt[i] ^ 1));
        }
        break;
      }
      case NodeKind::kOr: {
        const uint8_t* at =
            scratch.truth.data() + node.child0 * kBatchSize;
        const uint8_t* ak =
            scratch.known.data() + node.child0 * kBatchSize;
        const uint8_t* bt =
            scratch.truth.data() + node.child1 * kBatchSize;
        const uint8_t* bk =
            scratch.known.data() + node.child1 * kBatchSize;
        // Kleene OR: TRUE dominates UNKNOWN.
        for (size_t i = 0; i < n; ++i) {
          t[i] = at[i] | bt[i];
          k[i] = (ak[i] & bk[i]) | (ak[i] & at[i]) | (bk[i] & bt[i]);
        }
        break;
      }
    }
  }
}

void VectorPredicate::Match(const Segment& seg, Scratch& scratch,
                            std::vector<uint32_t>& out) const {
  scratch.truth.resize(nodes_.size() * kBatchSize);
  scratch.known.resize(nodes_.size() * kBatchSize);
  scratch.vals.resize(2 * kBatchSize);
  scratch.nulls.resize(2 * kBatchSize);
  const size_t rows = seg.num_rows();
  const size_t root = nodes_.size() - 1;
  const uint8_t* alive = seg.alive_data();
  for (size_t base = 0; base < rows; base += kBatchSize) {
    const size_t n = std::min(kBatchSize, rows - base);
    EvalBatch(seg, base, n, scratch);
    const uint8_t* t = scratch.truth.data() + root * kBatchSize;
    const uint8_t* k = scratch.known.data() + root * kBatchSize;
    const uint8_t* a = alive + base;
    for (size_t i = 0; i < n; ++i) {
      if (a[i] & t[i] & k[i]) {
        out.push_back(static_cast<uint32_t>(base + i));
      }
    }
  }
}

}  // namespace fungusdb
