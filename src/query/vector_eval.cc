#include "query/vector_eval.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace fungusdb {

std::optional<VectorPredicate::Operand> VectorPredicate::CompileOperand(
    const BoundExpr& expr) {
  Operand op;
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      if (expr.literal.is_null()) {
        op.kind = OperandKind::kNullLit;
        return op;
      }
      op.kind = OperandKind::kConst;
      switch (expr.literal.type()) {
        case DataType::kInt64:
          op.constant = static_cast<double>(expr.literal.AsInt64());
          return op;
        case DataType::kFloat64:
          op.constant = expr.literal.AsFloat64();
          return op;
        case DataType::kTimestamp:
          op.constant = static_cast<double>(expr.literal.AsTimestamp());
          return op;
        default:
          return std::nullopt;
      }
    case Expr::Kind::kColumnRef:
      switch (expr.col_source) {
        case ColumnSource::kTimestamp:
          op.kind = OperandKind::kTs;
          return op;
        case ColumnSource::kFreshness:
          op.kind = OperandKind::kFreshness;
          return op;
        case ColumnSource::kUser:
          op.col = expr.col_index;
          if (expr.result_type == DataType::kInt64) {
            op.kind = OperandKind::kInt64Col;
            return op;
          }
          if (expr.result_type == DataType::kFloat64) {
            op.kind = OperandKind::kFloat64Col;
            return op;
          }
          if (expr.result_type == DataType::kTimestamp) {
            op.kind = OperandKind::kTimestampCol;
            return op;
          }
          return std::nullopt;
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

std::optional<int> VectorPredicate::CompileNode(const BoundExpr& expr,
                                                std::vector<Node>& nodes) {
  Node node;
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      // WHERE true / WHERE NULL. The walker treats NULL as "not TRUE".
      if (expr.literal.is_null()) {
        node.kind = NodeKind::kConstBool;
        node.const_known = false;
      } else if (expr.literal.type() == DataType::kBool) {
        node.kind = NodeKind::kConstBool;
        node.const_truth = expr.literal.AsBool();
        node.const_known = true;
      } else {
        return std::nullopt;
      }
      nodes.push_back(node);
      return static_cast<int>(nodes.size()) - 1;
    case Expr::Kind::kUnary:
      switch (expr.unary_op) {
        case UnaryOp::kNot: {
          auto child = CompileNode(expr.children[0], nodes);
          if (!child) return std::nullopt;
          node.kind = NodeKind::kNot;
          node.child0 = *child;
          nodes.push_back(node);
          return static_cast<int>(nodes.size()) - 1;
        }
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull: {
          auto operand = CompileOperand(expr.children[0]);
          if (!operand) return std::nullopt;
          node.kind = NodeKind::kIsNull;
          node.lhs = *operand;
          nodes.push_back(node);
          int idx = static_cast<int>(nodes.size()) - 1;
          if (expr.unary_op == UnaryOp::kIsNotNull) {
            Node neg;
            neg.kind = NodeKind::kNot;
            neg.child0 = idx;
            nodes.push_back(neg);
            idx = static_cast<int>(nodes.size()) - 1;
          }
          return idx;
        }
        default:
          return std::nullopt;
      }
    case Expr::Kind::kBinary:
      switch (expr.binary_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          auto a = CompileNode(expr.children[0], nodes);
          if (!a) return std::nullopt;
          auto b = CompileNode(expr.children[1], nodes);
          if (!b) return std::nullopt;
          node.kind = expr.binary_op == BinaryOp::kAnd ? NodeKind::kAnd
                                                       : NodeKind::kOr;
          node.child0 = *a;
          node.child1 = *b;
          nodes.push_back(node);
          return static_cast<int>(nodes.size()) - 1;
        }
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          auto lhs = CompileOperand(expr.children[0]);
          auto rhs = lhs ? CompileOperand(expr.children[1]) : std::nullopt;
          if (lhs && rhs) {
            node.kind = NodeKind::kCompare;
            node.cmp_op = expr.binary_op;
            node.lhs = *lhs;
            node.rhs = *rhs;
            nodes.push_back(node);
            return static_cast<int>(nodes.size()) - 1;
          }
          // Not numeric: string-column = / != string-literal (either
          // operand order) lowers to the dictionary-aware kernel.
          if (expr.binary_op != BinaryOp::kEq &&
              expr.binary_op != BinaryOp::kNe) {
            return std::nullopt;
          }
          const BoundExpr* colx = nullptr;
          const BoundExpr* litx = nullptr;
          if (expr.children[0].kind == Expr::Kind::kColumnRef &&
              expr.children[1].kind == Expr::Kind::kLiteral) {
            colx = &expr.children[0];
            litx = &expr.children[1];
          } else if (expr.children[1].kind == Expr::Kind::kColumnRef &&
                     expr.children[0].kind == Expr::Kind::kLiteral) {
            colx = &expr.children[1];
            litx = &expr.children[0];
          } else {
            return std::nullopt;
          }
          if (colx->col_source != ColumnSource::kUser ||
              colx->result_type != DataType::kString ||
              litx->literal.is_null() ||
              litx->literal.type() != DataType::kString) {
            return std::nullopt;
          }
          node.kind = NodeKind::kStringEq;
          node.str_col = colx->col_index;
          node.str_lit = litx->literal.AsString();
          nodes.push_back(node);
          int idx = static_cast<int>(nodes.size()) - 1;
          if (expr.binary_op == BinaryOp::kNe) {
            // Kleene NOT over equality: NULL cells stay UNKNOWN, which
            // is exactly the walker's `col != 'x'` semantics.
            Node neg;
            neg.kind = NodeKind::kNot;
            neg.child0 = idx;
            nodes.push_back(neg);
            idx = static_cast<int>(nodes.size()) - 1;
          }
          return idx;
        }
        default:
          return std::nullopt;
      }
    default:
      return std::nullopt;
  }
}

std::optional<VectorPredicate> VectorPredicate::Compile(
    const BoundExpr& expr) {
  VectorPredicate pred;
  auto root = CompileNode(expr, pred.nodes_);
  if (!root) return std::nullopt;
  return pred;
}

void VectorPredicate::MaterializeOperand(const Operand& op,
                                         const Segment& seg, size_t base,
                                         size_t n, const uint8_t* alive,
                                         double* vals,
                                         uint8_t* nulls) const {
  switch (op.kind) {
    case OperandKind::kNullLit:
      std::memset(nulls, 1, n);
      return;
    case OperandKind::kConst:
      std::fill(vals, vals + n, op.constant);
      std::memset(nulls, 0, n);
      return;
    case OperandKind::kTs:
      seg.DecodeTs(base, n, vals);
      std::memset(nulls, 0, n);
      return;
    case OperandKind::kFreshness:
      seg.DecodeStoredFreshness(base, n, alive, vals);
      // The stored values are "as of the last materialization"; replay
      // pending uniform decrements in fold order so the kernel compares
      // the same effective values Segment::Freshness reconstructs. Dead
      // rows pick up garbage here, but Match's alive mask drops them.
      for (const double d : seg.pending_decay()) {
        for (size_t i = 0; i < n; ++i) vals[i] -= d;
      }
      std::memset(nulls, 0, n);
      return;
    case OperandKind::kInt64Col:
    case OperandKind::kFloat64Col:
    case OperandKind::kTimestampCol:
      if (seg.column_null_count(op.col) == 0) {
        seg.DecodeNumericColumn(op.col, base, n, vals, nullptr);
        std::memset(nulls, 0, n);
      } else {
        seg.DecodeNumericColumn(op.col, base, n, vals, nulls);
      }
      return;
  }
}

void VectorPredicate::EvalBatch(const Segment& seg, size_t base, size_t n,
                                const uint8_t* alive, const int8_t* decided,
                                Scratch& scratch) const {
  for (size_t idx = 0; idx < nodes_.size(); ++idx) {
    const Node& node = nodes_[idx];
    uint8_t* t = scratch.truth.data() + idx * kBatchSize;
    uint8_t* k = scratch.known.data() + idx * kBatchSize;
    if (decided != nullptr && decided[idx] >= 0) {
      // Whole-segment decision from the encoded metadata: nothing to
      // decode for this leaf.
      std::memset(t, decided[idx], n);
      std::memset(k, 1, n);
      continue;
    }
    switch (node.kind) {
      case NodeKind::kConstBool:
        std::memset(t, node.const_truth ? 1 : 0, n);
        std::memset(k, node.const_known ? 1 : 0, n);
        break;
      case NodeKind::kIsNull: {
        double* lv = scratch.vals.data();
        uint8_t* ln = scratch.nulls.data();
        MaterializeOperand(node.lhs, seg, base, n, alive, lv, ln);
        std::memcpy(t, ln, n);
        std::memset(k, 1, n);
        break;
      }
      case NodeKind::kStringEq: {
        uint8_t* eq = scratch.nulls.data();
        uint8_t* nn = scratch.nulls.data() + kBatchSize;
        seg.MatchStringEq(node.str_col, base, n, node.str_lit, eq, nn);
        for (size_t i = 0; i < n; ++i) {
          t[i] = eq[i];
          k[i] = nn[i] ^ 1;  // NULL cell -> UNKNOWN
        }
        break;
      }
      case NodeKind::kCompare: {
        double* lv = scratch.vals.data();
        double* rv = scratch.vals.data() + kBatchSize;
        uint8_t* ln = scratch.nulls.data();
        uint8_t* rn = scratch.nulls.data() + kBatchSize;
        MaterializeOperand(node.lhs, seg, base, n, alive, lv, ln);
        MaterializeOperand(node.rhs, seg, base, n, alive, rv, rn);
        // Value::Compare trichotomy: NaN is neither < nor >, so cmp == 0
        // and NaN "equals" everything — preserved deliberately.
        auto run = [&](auto accept) {
          for (size_t i = 0; i < n; ++i) {
            if (ln[i] | rn[i]) {
              t[i] = 0;
              k[i] = 0;
              continue;
            }
            const double x = lv[i];
            const double y = rv[i];
            const int cmp = x < y ? -1 : (x > y ? 1 : 0);
            t[i] = accept(cmp) ? 1 : 0;
            k[i] = 1;
          }
        };
        switch (node.cmp_op) {
          case BinaryOp::kEq:
            run([](int c) { return c == 0; });
            break;
          case BinaryOp::kNe:
            run([](int c) { return c != 0; });
            break;
          case BinaryOp::kLt:
            run([](int c) { return c < 0; });
            break;
          case BinaryOp::kLe:
            run([](int c) { return c <= 0; });
            break;
          case BinaryOp::kGt:
            run([](int c) { return c > 0; });
            break;
          default:
            run([](int c) { return c >= 0; });
            break;
        }
        break;
      }
      case NodeKind::kNot: {
        const uint8_t* ct =
            scratch.truth.data() + node.child0 * kBatchSize;
        const uint8_t* ck =
            scratch.known.data() + node.child0 * kBatchSize;
        for (size_t i = 0; i < n; ++i) t[i] = ct[i] ^ 1;
        std::memcpy(k, ck, n);
        break;
      }
      case NodeKind::kAnd: {
        const uint8_t* at =
            scratch.truth.data() + node.child0 * kBatchSize;
        const uint8_t* ak =
            scratch.known.data() + node.child0 * kBatchSize;
        const uint8_t* bt =
            scratch.truth.data() + node.child1 * kBatchSize;
        const uint8_t* bk =
            scratch.known.data() + node.child1 * kBatchSize;
        // Kleene AND: FALSE dominates UNKNOWN.
        for (size_t i = 0; i < n; ++i) {
          t[i] = at[i] & bt[i];
          k[i] = (ak[i] & bk[i]) | (ak[i] & (at[i] ^ 1)) |
                 (bk[i] & (bt[i] ^ 1));
        }
        break;
      }
      case NodeKind::kOr: {
        const uint8_t* at =
            scratch.truth.data() + node.child0 * kBatchSize;
        const uint8_t* ak =
            scratch.known.data() + node.child0 * kBatchSize;
        const uint8_t* bt =
            scratch.truth.data() + node.child1 * kBatchSize;
        const uint8_t* bk =
            scratch.known.data() + node.child1 * kBatchSize;
        // Kleene OR: TRUE dominates UNKNOWN.
        for (size_t i = 0; i < n; ++i) {
          t[i] = at[i] | bt[i];
          k[i] = (ak[i] & bk[i]) | (ak[i] & at[i]) | (bk[i] & bt[i]);
        }
        break;
      }
    }
  }
}

namespace {

/// Mirror of a comparison for swapped operands: c <op> x == x <mirror> c.
BinaryOp MirrorCompare(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // =, != are symmetric
  }
}

/// Decides `x <op> c` for every x in [lo, hi] (both bounds attained):
/// 1 = TRUE for all, 0 = FALSE for all, -1 = mixed.
int8_t DecideRangeCompare(BinaryOp op, double lo, double hi, double c) {
  switch (op) {
    case BinaryOp::kLt:
      if (hi < c) return 1;
      if (lo >= c) return 0;
      return -1;
    case BinaryOp::kLe:
      if (hi <= c) return 1;
      if (lo > c) return 0;
      return -1;
    case BinaryOp::kGt:
      if (lo > c) return 1;
      if (hi <= c) return 0;
      return -1;
    case BinaryOp::kGe:
      if (lo >= c) return 1;
      if (hi < c) return 0;
      return -1;
    case BinaryOp::kEq:
      if (c < lo || c > hi) return 0;
      if (lo == hi && lo == c) return 1;
      return -1;
    case BinaryOp::kNe:
      if (c < lo || c > hi) return 1;
      if (lo == hi && lo == c) return 0;
      return -1;
    default:
      return -1;
  }
}

}  // namespace

std::vector<int8_t> VectorPredicate::DecideFrozenLeaves(
    const Segment& seg) const {
  std::vector<int8_t> decided(nodes_.size(), -1);
  const encode::FrozenSegment& fz = seg.frozen();
  for (size_t idx = 0; idx < nodes_.size(); ++idx) {
    const Node& node = nodes_[idx];
    if (node.kind == NodeKind::kStringEq) {
      // A needle absent from the dictionary matches nothing; with no
      // NULL cells in the way the whole segment is FALSE.
      if (seg.column_null_count(node.str_col) == 0 &&
          !fz.columns[node.str_col].strings.CodeOf(node.str_lit)
               .has_value()) {
        decided[idx] = 0;
      }
      continue;
    }
    if (node.kind != NodeKind::kCompare) continue;
    // One side a FOR-packed int span, the other a non-NaN constant.
    const Operand* col_op = nullptr;
    const Operand* const_op = nullptr;
    BinaryOp op = node.cmp_op;
    auto is_packed = [](OperandKind kind) {
      return kind == OperandKind::kTs || kind == OperandKind::kInt64Col ||
             kind == OperandKind::kTimestampCol;
    };
    if (is_packed(node.lhs.kind) && node.rhs.kind == OperandKind::kConst) {
      col_op = &node.lhs;
      const_op = &node.rhs;
    } else if (is_packed(node.rhs.kind) &&
               node.lhs.kind == OperandKind::kConst) {
      col_op = &node.rhs;
      const_op = &node.lhs;
      op = MirrorCompare(op);
    } else {
      continue;
    }
    if (std::isnan(const_op->constant)) continue;  // NaN "equals" all
    const encode::PackedInts* packed = nullptr;
    if (col_op->kind == OperandKind::kTs) {
      packed = &fz.ts;
    } else {
      // NULL cells store a raw 0 inside the packed range and would
      // poison an all-TRUE decision — require an all-valid column.
      if (seg.column_null_count(col_op->col) != 0) continue;
      packed = &fz.columns[col_op->col].ints;
    }
    // Min and max are attained, so their double images bound every
    // row's double image exactly (int -> double is monotone).
    const double lo = static_cast<double>(packed->base);
    const double hi = static_cast<double>(static_cast<int64_t>(
        static_cast<uint64_t>(packed->base) + packed->max_delta));
    decided[idx] = DecideRangeCompare(op, lo, hi, const_op->constant);
  }
  return decided;
}

void VectorPredicate::Match(const Segment& seg, Scratch& scratch,
                            std::vector<uint32_t>& out) const {
  scratch.truth.resize(nodes_.size() * kBatchSize);
  scratch.known.resize(nodes_.size() * kBatchSize);
  scratch.vals.resize(2 * kBatchSize);
  scratch.nulls.resize(2 * kBatchSize);
  scratch.alive.resize(kBatchSize);
  const size_t rows = seg.num_rows();
  const size_t root = nodes_.size() - 1;
  const bool frozen = seg.is_frozen();
  std::vector<int8_t> decided;
  if (frozen) decided = DecideFrozenLeaves(seg);
  const int8_t* decided_ptr = frozen ? decided.data() : nullptr;
  for (size_t base = 0; base < rows; base += kBatchSize) {
    const size_t n = std::min(kBatchSize, rows - base);
    // Fully-dead batches of a frozen segment are answered by the RLE
    // liveness runs alone — skip before any decode. (Not done for the
    // plain tier, where the check would just pre-read the alive span.)
    if (frozen && !seg.AnyLive(base, n)) continue;
    const uint8_t* a = seg.DecodeAlive(base, n, scratch.alive.data());
    if (frozen) ++scratch.decoded_batches;
    EvalBatch(seg, base, n, a, decided_ptr, scratch);
    const uint8_t* t = scratch.truth.data() + root * kBatchSize;
    const uint8_t* k = scratch.known.data() + root * kBatchSize;
    for (size_t i = 0; i < n; ++i) {
      if (a[i] & t[i] & k[i]) {
        out.push_back(static_cast<uint32_t>(base + i));
      }
    }
  }
}

}  // namespace fungusdb
