#include "query/engine.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "query/binder.h"
#include "query/evaluator.h"

namespace fungusdb {
namespace {

/// Accumulator for one aggregate select item within one group.
struct AggAccumulator {
  uint64_t count = 0;
  int64_t sum_i = 0;
  double sum_d = 0.0;
  // Freshness-weighted state (FCOUNT/FSUM/FAVG): each observation
  // contributes its tuple's current freshness instead of 1.
  double weighted_count = 0.0;
  double weighted_sum = 0.0;
  std::optional<Value> min;
  std::optional<Value> max;

  Status Observe(const Value& v, double freshness) {
    if (v.is_null()) return Status::OK();
    ++count;
    weighted_count += freshness;
    if (IsNumeric(v.type())) {
      FUNGUSDB_ASSIGN_OR_RETURN(double d, v.ToDouble());
      sum_d += d;
      weighted_sum += freshness * d;
      if (v.type() == DataType::kInt64) sum_i += v.AsInt64();
    }
    if (!min.has_value()) {
      min = v;
      max = v;
    } else {
      FUNGUSDB_ASSIGN_OR_RETURN(int cmp_min, v.Compare(*min));
      if (cmp_min < 0) min = v;
      FUNGUSDB_ASSIGN_OR_RETURN(int cmp_max, v.Compare(*max));
      if (cmp_max > 0) max = v;
    }
    return Status::OK();
  }

  Value Finalize(AggFn fn, std::optional<DataType> result_type) const {
    switch (fn) {
      case AggFn::kCount:
        return Value::Int64(static_cast<int64_t>(count));
      case AggFn::kSum:
        if (count == 0) return Value::Null();
        if (result_type == DataType::kInt64) return Value::Int64(sum_i);
        return Value::Float64(sum_d);
      case AggFn::kAvg:
        if (count == 0) return Value::Null();
        return Value::Float64(sum_d / static_cast<double>(count));
      case AggFn::kMin:
        return min.value_or(Value::Null());
      case AggFn::kMax:
        return max.value_or(Value::Null());
      case AggFn::kFCount:
        return Value::Float64(weighted_count);
      case AggFn::kFSum:
        if (count == 0) return Value::Null();
        return Value::Float64(weighted_sum);
      case AggFn::kFAvg:
        if (count == 0 || weighted_count == 0.0) return Value::Null();
        return Value::Float64(weighted_sum / weighted_count);
    }
    return Value::Null();
  }
};

/// Fast-path predicate: `numeric_column <cmp> numeric_literal`. The
/// generic evaluator resolves the row id back to a segment and boxes a
/// Value per cell; this form is common enough (point lookups, range
/// scans, retention cutoffs) to deserve a typed scan over the segments.
struct FastPredicate {
  ColumnSource source = ColumnSource::kUser;
  size_t col = 0;
  DataType col_type = DataType::kInt64;
  BinaryOp op = BinaryOp::kEq;
  double rhs = 0.0;

  bool Matches(double lhs) const {
    switch (op) {
      case BinaryOp::kEq:
        return lhs == rhs;
      case BinaryOp::kNe:
        return lhs != rhs;
      case BinaryOp::kLt:
        return lhs < rhs;
      case BinaryOp::kLe:
        return lhs <= rhs;
      case BinaryOp::kGt:
        return lhs > rhs;
      default:
        return lhs >= rhs;
    }
  }
};

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

std::optional<FastPredicate> TryCompileFastPredicate(
    const BoundExpr& expr) {
  if (expr.kind != Expr::Kind::kBinary || !IsComparison(expr.binary_op)) {
    return std::nullopt;
  }
  const BoundExpr& lhs = expr.children[0];
  const BoundExpr& rhs = expr.children[1];
  if (lhs.kind != Expr::Kind::kColumnRef ||
      rhs.kind != Expr::Kind::kLiteral || rhs.literal.is_null()) {
    return std::nullopt;
  }
  if (!lhs.result_type.has_value() || !IsNumeric(*lhs.result_type) ||
      !IsNumeric(rhs.literal.type())) {
    return std::nullopt;
  }
  FastPredicate fast;
  fast.source = lhs.col_source;
  fast.col = lhs.col_index;
  fast.col_type = *lhs.result_type;
  fast.op = expr.binary_op;
  fast.rhs = rhs.literal.ToDouble().value();
  return fast;
}

/// Scans one segment with the compiled predicate, appending matches.
void ScanSegmentFast(const Segment& seg, const FastPredicate& fast,
                     std::vector<RowId>& matched, uint64_t& scanned) {
  const size_t n = seg.num_rows();
  const Column* column =
      fast.source == ColumnSource::kUser ? &seg.column(fast.col) : nullptr;
  for (size_t off = 0; off < n; ++off) {
    if (!seg.IsLive(off)) continue;
    ++scanned;
    double lhs = 0.0;
    switch (fast.source) {
      case ColumnSource::kTimestamp:
        lhs = static_cast<double>(seg.InsertTime(off));
        break;
      case ColumnSource::kFreshness:
        lhs = seg.Freshness(off);
        break;
      case ColumnSource::kUser: {
        if (column->IsNull(off)) continue;  // null comparison -> excluded
        switch (fast.col_type) {
          case DataType::kInt64:
            lhs = static_cast<double>(
                static_cast<const Int64Column*>(column)->at(off));
            break;
          case DataType::kFloat64:
            lhs = static_cast<const Float64Column*>(column)->at(off);
            break;
          default:  // kTimestamp
            lhs = static_cast<double>(
                static_cast<const TimestampColumn*>(column)->at(off));
            break;
        }
        break;
      }
    }
    if (fast.Matches(lhs)) matched.push_back(seg.first_row() + off);
  }
}

/// Name shown for a select item without an alias.
std::string ItemName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind() == Expr::Kind::kColumnRef) {
    return item.expr->column_name();
  }
  return item.expr->ToString();
}

/// Composite group key with a non-printable separator.
std::string GroupKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    key += v.is_null() ? "\x01" : v.ToString();
    key += '\x1F';
  }
  return key;
}

Status SortRows(ResultSet& result, const OrderBy& order) {
  const int col = result.FindColumn(order.column);
  if (col < 0) {
    return Status::NotFound("ORDER BY column '" + order.column +
                            "' is not in the select list");
  }
  Status sort_status;
  std::stable_sort(
      result.rows.begin(), result.rows.end(),
      [&](const std::vector<Value>& a, const std::vector<Value>& b) {
        const Value& va = a[static_cast<size_t>(col)];
        const Value& vb = b[static_cast<size_t>(col)];
        // Nulls sort last regardless of direction.
        if (va.is_null() || vb.is_null()) return !va.is_null();
        Result<int> cmp = va.Compare(vb);
        if (!cmp.ok()) {
          if (sort_status.ok()) sort_status = cmp.status();
          return false;
        }
        return order.descending ? *cmp > 0 : *cmp < 0;
      });
  return sort_status;
}

}  // namespace

QueryEngine::QueryEngine(QueryEngineOptions options) : options_(options) {}

void QueryEngine::AddConsumeObserver(ConsumeObserver observer) {
  observers_.push_back(std::move(observer));
}

Result<ResultSet> QueryEngine::Execute(const Query& query, Table& table,
                                       Timestamp now) {
  const Schema& schema = table.schema();

  // --- Analyze the select list. ---
  bool has_aggregate = !query.group_by.empty();
  for (const SelectItem& item : query.items) {
    if (item.expr->ContainsAggregate()) has_aggregate = true;
  }
  if (has_aggregate && query.items.empty()) {
    return Status::InvalidArgument(
        "SELECT * cannot be combined with aggregation");
  }

  // Bind WHERE.
  std::optional<BoundExpr> where;
  if (query.where != nullptr) {
    if (query.where->ContainsAggregate()) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(BoundExpr bound, Bind(*query.where, schema));
    if (bound.result_type.has_value() &&
        bound.result_type != DataType::kBool) {
      return Status::TypeMismatch("WHERE must be a boolean expression");
    }
    where = std::move(bound);
  }

  // Bind the select list.
  struct BoundItem {
    std::string name;
    BoundExpr expr;
  };
  std::vector<BoundItem> items;
  for (const SelectItem& item : query.items) {
    FUNGUSDB_ASSIGN_OR_RETURN(BoundExpr bound, Bind(*item.expr, schema));
    items.push_back({ItemName(item), std::move(bound)});
  }

  // A select item "covers" a GROUP BY entry when the entry names its
  // alias (enabling GROUP BY over computed expressions such as
  // time_bucket(__ts, ...)) or, for bare column refs, the column.
  auto covers = [](const BoundItem& item, const std::string& entry) {
    if (item.expr.is_aggregate()) return false;
    if (item.name == entry) return true;
    return item.expr.kind == Expr::Kind::kColumnRef &&
           item.expr.col_name == entry;
  };

  // Aggregate-query shape checks: bare expressions must be grouped on.
  if (has_aggregate) {
    for (const BoundItem& item : items) {
      if (item.expr.is_aggregate()) continue;
      bool grouped = false;
      for (const std::string& entry : query.group_by) {
        if (covers(item, entry)) grouped = true;
      }
      if (!grouped) {
        return Status::InvalidArgument(
            "non-aggregate select item '" + item.name +
            "' must be a GROUP BY column");
      }
    }
  }

  // Bind GROUP BY entries: a select-list alias wins over a table column
  // of the same name.
  std::vector<BoundExpr> group_exprs;
  for (const std::string& entry : query.group_by) {
    const BoundItem* aliased = nullptr;
    for (const BoundItem& item : items) {
      if (!item.expr.is_aggregate() && item.name == entry) {
        aliased = &item;
        break;
      }
    }
    if (aliased != nullptr) {
      group_exprs.push_back(aliased->expr);
    } else {
      FUNGUSDB_ASSIGN_OR_RETURN(BoundExpr bound,
                                Bind(*Expr::Column(entry), schema));
      group_exprs.push_back(std::move(bound));
    }
  }

  // --- Scan & filter. ---
  ResultSet result;
  std::vector<RowId> matched;
  std::optional<FastPredicate> fast;
  if (where.has_value()) fast = TryCompileFastPredicate(*where);
  if (fast.has_value()) {
    // Typed scan: read column vectors directly, no per-row id
    // resolution and no Value boxing. With a pool and enough segments
    // the scan is morsel-driven: each live segment is one morsel,
    // workers claim morsels dynamically, and per-morsel outputs merge
    // in segment order so `matched` is identical to the serial scan.
    ThreadPool* pool = options_.pool;
    const std::vector<const Segment*> segments = table.LiveSegments();
    if (pool != nullptr && pool->num_threads() > 1 &&
        segments.size() >= options_.parallel_scan_min_segments) {
      std::vector<std::vector<RowId>> morsel_matched(segments.size());
      std::vector<uint64_t> morsel_scanned(segments.size(), 0);
      pool->ParallelFor(segments.size(), [&](size_t i) {
        ScanSegmentFast(*segments[i], *fast, morsel_matched[i],
                        morsel_scanned[i]);
      });
      size_t total = 0;
      for (const auto& m : morsel_matched) total += m.size();
      matched.reserve(total);
      for (size_t i = 0; i < segments.size(); ++i) {
        result.stats.rows_scanned += morsel_scanned[i];
        matched.insert(matched.end(), morsel_matched[i].begin(),
                       morsel_matched[i].end());
      }
      if (options_.metrics != nullptr) {
        options_.metrics->IncrementCounter(
            "fungusdb.parallel.morsels_dispatched",
            static_cast<int64_t>(segments.size()));
      }
    } else {
      for (const Segment* seg : segments) {
        ScanSegmentFast(*seg, *fast, matched, result.stats.rows_scanned);
      }
    }
  } else {
    Status scan_status;
    table.ForEachLive([&](RowId row) {
      if (!scan_status.ok()) return;
      ++result.stats.rows_scanned;
      if (where.has_value()) {
        Result<bool> pass = EvalPredicate(*where, table, row);
        if (!pass.ok()) {
          scan_status = pass.status();
          return;
        }
        if (!*pass) return;
      }
      matched.push_back(row);
    });
    FUNGUSDB_RETURN_IF_ERROR(scan_status);
  }
  result.stats.rows_matched = matched.size();

  if (options_.record_access && table.options().track_access) {
    for (RowId row : matched) table.RecordAccess(row);
  }

  // --- Project / aggregate. ---
  if (!has_aggregate) {
    if (query.items.empty()) {
      // SELECT *: all user columns in schema order.
      for (const Field& f : schema.fields()) {
        result.column_names.push_back(f.name);
      }
      result.rows.reserve(matched.size());
      for (RowId row : matched) {
        std::vector<Value> out_row;
        out_row.reserve(schema.num_fields());
        for (size_t c = 0; c < schema.num_fields(); ++c) {
          FUNGUSDB_ASSIGN_OR_RETURN(Value v, table.GetValue(row, c));
          out_row.push_back(std::move(v));
        }
        result.rows.push_back(std::move(out_row));
      }
    } else {
      for (const BoundItem& item : items) {
        result.column_names.push_back(item.name);
      }
      result.rows.reserve(matched.size());
      for (RowId row : matched) {
        std::vector<Value> out_row;
        out_row.reserve(items.size());
        for (const BoundItem& item : items) {
          FUNGUSDB_ASSIGN_OR_RETURN(Value v,
                                    EvalScalar(item.expr, table, row));
          out_row.push_back(std::move(v));
        }
        result.rows.push_back(std::move(out_row));
      }
    }
  } else {
    for (const BoundItem& item : items) {
      result.column_names.push_back(item.name);
    }
    struct Group {
      std::vector<Value> key_values;          // one per group_by column
      std::vector<AggAccumulator> accumulators;  // one per aggregate item
    };
    std::map<std::string, Group> groups;
    const size_t num_aggs = items.size();

    for (RowId row : matched) {
      std::vector<Value> key_values;
      key_values.reserve(group_exprs.size());
      for (const BoundExpr& g : group_exprs) {
        FUNGUSDB_ASSIGN_OR_RETURN(Value v, EvalScalar(g, table, row));
        key_values.push_back(std::move(v));
      }
      auto [it, inserted] =
          groups.try_emplace(GroupKey(key_values));
      if (inserted) {
        it->second.key_values = key_values;
        it->second.accumulators.resize(num_aggs);
      }
      Group& group = it->second;
      const double freshness = table.Freshness(row);
      for (size_t i = 0; i < items.size(); ++i) {
        const BoundExpr& e = items[i].expr;
        if (!e.is_aggregate()) continue;
        if (e.agg_is_star()) {
          FUNGUSDB_RETURN_IF_ERROR(
              group.accumulators[i].Observe(Value::Int64(1), freshness));
        } else {
          FUNGUSDB_ASSIGN_OR_RETURN(Value v,
                                    EvalScalar(e.children[0], table, row));
          FUNGUSDB_RETURN_IF_ERROR(
              group.accumulators[i].Observe(v, freshness));
        }
      }
    }

    // Global aggregation over an empty input still yields one row.
    if (groups.empty() && query.group_by.empty()) {
      Group empty;
      empty.accumulators.resize(num_aggs);
      groups.emplace("", std::move(empty));
    }

    for (const auto& [key, group] : groups) {
      std::vector<Value> out_row;
      out_row.reserve(items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        const BoundExpr& e = items[i].expr;
        if (e.is_aggregate()) {
          out_row.push_back(
              group.accumulators[i].Finalize(e.agg_fn, e.result_type));
        } else {
          // A grouped item: find its position among group_by entries.
          size_t pos = 0;
          for (size_t g = 0; g < query.group_by.size(); ++g) {
            if (covers(items[i], query.group_by[g])) pos = g;
          }
          out_row.push_back(group.key_values[pos]);
        }
      }
      result.rows.push_back(std::move(out_row));
    }
  }

  // --- DISTINCT / ORDER BY / LIMIT. ---
  if (query.distinct) {
    // Collapse duplicate output rows, keeping first occurrences in
    // order. Keys render through Value::ToString (nulls distinct from
    // every non-null, equal to each other).
    std::set<std::string> seen;
    std::vector<std::vector<Value>> unique_rows;
    for (std::vector<Value>& row : result.rows) {
      std::string key;
      for (const Value& v : row) {
        key += v.is_null() ? "\x01" : v.ToString();
        key += '\x1F';
      }
      if (seen.insert(std::move(key)).second) {
        unique_rows.push_back(std::move(row));
      }
    }
    result.rows = std::move(unique_rows);
  }
  if (query.order_by.has_value()) {
    FUNGUSDB_RETURN_IF_ERROR(SortRows(result, *query.order_by));
  }
  if (query.limit.has_value() && result.rows.size() > *query.limit) {
    result.rows.resize(*query.limit);
  }

  // --- Law 2: consume σ_P(R). ---
  if (query.consuming && !matched.empty()) {
    for (RowId row : matched) {
      FUNGUSDB_RETURN_IF_ERROR(table.Kill(row));
    }
    result.stats.rows_consumed = matched.size();
    for (const ConsumeObserver& obs : observers_) {
      obs(table, matched, now);
    }
    table.ReclaimDeadSegments();
  }

  return result;
}

}  // namespace fungusdb
