#include "query/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "common/trace.h"
#include "query/binder.h"
#include "query/evaluator.h"
#include "query/vector_eval.h"

namespace fungusdb {
namespace {

/// Accumulator for one aggregate select item within one group.
struct AggAccumulator {
  uint64_t count = 0;
  int64_t sum_i = 0;
  double sum_d = 0.0;
  // Freshness-weighted state (FCOUNT/FSUM/FAVG): each observation
  // contributes its tuple's current freshness instead of 1.
  double weighted_count = 0.0;
  double weighted_sum = 0.0;
  std::optional<Value> min;
  std::optional<Value> max;

  Status Observe(const Value& v, double freshness) {
    if (v.is_null()) return Status::OK();
    ++count;
    weighted_count += freshness;
    if (IsNumeric(v.type())) {
      FUNGUSDB_ASSIGN_OR_RETURN(double d, v.ToDouble());
      sum_d += d;
      weighted_sum += freshness * d;
      if (v.type() == DataType::kInt64) sum_i += v.AsInt64();
    }
    if (!min.has_value()) {
      min = v;
      max = v;
    } else {
      FUNGUSDB_ASSIGN_OR_RETURN(int cmp_min, v.Compare(*min));
      if (cmp_min < 0) min = v;
      FUNGUSDB_ASSIGN_OR_RETURN(int cmp_max, v.Compare(*max));
      if (cmp_max > 0) max = v;
    }
    return Status::OK();
  }

  Value Finalize(AggFn fn, std::optional<DataType> result_type) const {
    switch (fn) {
      case AggFn::kCount:
        return Value::Int64(static_cast<int64_t>(count));
      case AggFn::kSum:
        if (count == 0) return Value::Null();
        if (result_type == DataType::kInt64) return Value::Int64(sum_i);
        return Value::Float64(sum_d);
      case AggFn::kAvg:
        if (count == 0) return Value::Null();
        return Value::Float64(sum_d / static_cast<double>(count));
      case AggFn::kMin:
        return min.value_or(Value::Null());
      case AggFn::kMax:
        return max.value_or(Value::Null());
      case AggFn::kFCount:
        return Value::Float64(weighted_count);
      case AggFn::kFSum:
        if (count == 0) return Value::Null();
        return Value::Float64(weighted_sum);
      case AggFn::kFAvg:
        if (count == 0 || weighted_count == 0.0) return Value::Null();
        return Value::Float64(weighted_sum / weighted_count);
    }
    return Value::Null();
  }
};

// --- Zone-map pruning planner. ---
//
// A conjunct `numeric_column <cmp> numeric_literal` restricts the rows
// that can match to a closed double-space interval. A segment whose
// zone-map bounds fall entirely outside some conjunct's interval holds
// no matching row and is skipped whole. Strict comparisons are widened
// to closed intervals, which keeps the check conservative (a boundary
// segment is scanned, never wrongly skipped). Everything here works in
// the same double space as Value::Compare, so int64/timestamp bounds
// convert monotonically and no rounding can make pruning unsound.

/// One conjunctive range constraint over a scan target.
struct RangeConstraint {
  ColumnSource source = ColumnSource::kUser;
  size_t col = 0;          // user column index when source == kUser
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  /// Whether a NaN cell satisfies the comparison. Under Value::Compare
  /// NaN is neither < nor > anything, so cmp == 0: =, <=, >= accept a
  /// NaN cell while !=, <, > reject it.
  bool nan_matches = false;
};

/// Constraints extracted from the top-level AND spine of the WHERE
/// tree. `always_false` marks a conjunct no row can ever satisfy
/// (comparison against NULL, or a NaN literal under !=, <, >).
struct PruningPlan {
  std::vector<RangeConstraint> constraints;
  bool always_false = false;
};

void CollectConjuncts(const BoundExpr& expr, PruningPlan& plan) {
  if (expr.kind == Expr::Kind::kBinary &&
      expr.binary_op == BinaryOp::kAnd) {
    CollectConjuncts(expr.children[0], plan);
    CollectConjuncts(expr.children[1], plan);
    return;
  }
  if (expr.kind != Expr::Kind::kBinary) return;
  BinaryOp op = expr.binary_op;
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return;
  }
  const BoundExpr* colref = &expr.children[0];
  const BoundExpr* literal = &expr.children[1];
  if (colref->kind == Expr::Kind::kLiteral &&
      literal->kind == Expr::Kind::kColumnRef) {
    std::swap(colref, literal);
    switch (op) {  // 5 < col  ==  col > 5
      case BinaryOp::kLt:
        op = BinaryOp::kGt;
        break;
      case BinaryOp::kLe:
        op = BinaryOp::kGe;
        break;
      case BinaryOp::kGt:
        op = BinaryOp::kLt;
        break;
      case BinaryOp::kGe:
        op = BinaryOp::kLe;
        break;
      default:
        break;
    }
  }
  if (colref->kind != Expr::Kind::kColumnRef ||
      literal->kind != Expr::Kind::kLiteral) {
    return;
  }
  if (colref->col_source == ColumnSource::kUser &&
      (!colref->result_type.has_value() ||
       !IsNumeric(*colref->result_type))) {
    return;
  }
  if (literal->literal.is_null()) {
    // `col <cmp> NULL` is UNKNOWN for every row; the AND spine can
    // never be TRUE.
    plan.always_false = true;
    return;
  }
  if (!IsNumeric(literal->literal.type())) return;
  const double v = literal->literal.ToDouble().value();
  RangeConstraint c;
  c.source = colref->col_source;
  c.col = colref->col_index;
  if (std::isnan(v)) {
    // cmp == 0 against every non-null cell: =, <=, >= match all rows
    // (no bound restriction, but an all-null segment still prunes);
    // !=, <, > match none.
    if (op == BinaryOp::kNe || op == BinaryOp::kLt ||
        op == BinaryOp::kGt) {
      plan.always_false = true;
      return;
    }
    c.nan_matches = true;
    plan.constraints.push_back(c);
    return;
  }
  switch (op) {
    case BinaryOp::kEq:
      c.lo = v;
      c.hi = v;
      c.nan_matches = true;
      break;
    case BinaryOp::kLt:
      c.hi = v;  // closed: boundary segments scan, never wrongly skip
      break;
    case BinaryOp::kLe:
      c.hi = v;
      c.nan_matches = true;
      break;
    case BinaryOp::kGt:
      c.lo = v;
      break;
    case BinaryOp::kGe:
      c.lo = v;
      c.nan_matches = true;
      break;
    default:  // kNe constrains no interval
      return;
  }
  plan.constraints.push_back(c);
}

/// True when the segment's zone map admits at least one potentially
/// matching row; false only when NO live row can satisfy every
/// constraint (the sound-to-skip direction).
bool SegmentCanMatch(const Segment& seg,
                     const std::vector<RangeConstraint>& constraints) {
  const ZoneMap& zone = seg.zone_map();
  for (const RangeConstraint& c : constraints) {
    switch (c.source) {
      case ColumnSource::kTimestamp:
        // Exact over all rows, superset of live rows; never null/NaN.
        if (c.lo > static_cast<double>(zone.max_ts) ||
            c.hi < static_cast<double>(zone.min_ts)) {
          return false;
        }
        break;
      case ColumnSource::kFreshness:
        // Conservative over live rows; never null/NaN. Freshness
        // predicates compare against EFFECTIVE values, so the bounds
        // must be the effective ones (stored bounds with pending decay
        // replayed — Segment::EffectiveMinFreshness).
        if (!zone.has_live_freshness()) return false;
        if (c.lo > seg.EffectiveMaxFreshness() ||
            c.hi < seg.EffectiveMinFreshness()) {
          return false;
        }
        break;
      case ColumnSource::kUser: {
        const ColumnZone& col = zone.columns[c.col];
        if (!col.tracked) break;  // no bounds kept; cannot judge
        if (col.has_nan && c.nan_matches) break;  // a NaN cell matches
        if (!col.has_value()) return false;  // all cells null (or NaN)
        if (c.lo > col.max || c.hi < col.min) return false;
        break;
      }
    }
  }
  return true;
}

/// Name shown for a select item without an alias.
std::string ItemName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind() == Expr::Kind::kColumnRef) {
    return item.expr->column_name();
  }
  return item.expr->ToString();
}

/// Composite group key with a non-printable separator.
std::string GroupKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    key += v.is_null() ? "\x01" : v.ToString();
    key += '\x1F';
  }
  return key;
}

Status SortRows(ResultSet& result, const OrderBy& order) {
  const int col = result.FindColumn(order.column);
  if (col < 0) {
    return Status::NotFound("ORDER BY column '" + order.column +
                            "' is not in the select list");
  }
  Status sort_status;
  std::stable_sort(
      result.rows.begin(), result.rows.end(),
      [&](const std::vector<Value>& a, const std::vector<Value>& b) {
        const Value& va = a[static_cast<size_t>(col)];
        const Value& vb = b[static_cast<size_t>(col)];
        // Nulls sort last regardless of direction.
        if (va.is_null() || vb.is_null()) return !va.is_null();
        Result<int> cmp = va.Compare(vb);
        if (!cmp.ok()) {
          if (sort_status.ok()) sort_status = cmp.status();
          return false;
        }
        return order.descending ? *cmp > 0 : *cmp < 0;
      });
  return sort_status;
}

}  // namespace

QueryEngine::QueryEngine(QueryEngineOptions options) : options_(options) {}

void QueryEngine::AddConsumeObserver(ConsumeObserver observer) {
  observers_.push_back(std::move(observer));
}

Result<ResultSet> QueryEngine::Execute(const Query& query, Table& table,
                                       Timestamp now) {
  FUNGUS_TRACE_SPAN("query.execute");
  const Schema& schema = table.schema();

  // --- Analyze the select list. ---
  bool has_aggregate = !query.group_by.empty();
  for (const SelectItem& item : query.items) {
    if (item.expr->ContainsAggregate()) has_aggregate = true;
  }
  if (has_aggregate && query.items.empty()) {
    return Status::InvalidArgument(
        "SELECT * cannot be combined with aggregation");
  }

  // Bind WHERE.
  std::optional<BoundExpr> where;
  if (query.where != nullptr) {
    if (query.where->ContainsAggregate()) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(BoundExpr bound, Bind(*query.where, schema));
    if (bound.result_type.has_value() &&
        bound.result_type != DataType::kBool) {
      return Status::TypeMismatch("WHERE must be a boolean expression");
    }
    where = std::move(bound);
  }

  // Bind the select list.
  struct BoundItem {
    std::string name;
    BoundExpr expr;
  };
  std::vector<BoundItem> items;
  for (const SelectItem& item : query.items) {
    FUNGUSDB_ASSIGN_OR_RETURN(BoundExpr bound, Bind(*item.expr, schema));
    items.push_back({ItemName(item), std::move(bound)});
  }

  // A select item "covers" a GROUP BY entry when the entry names its
  // alias (enabling GROUP BY over computed expressions such as
  // time_bucket(__ts, ...)) or, for bare column refs, the column.
  auto covers = [](const BoundItem& item, const std::string& entry) {
    if (item.expr.is_aggregate()) return false;
    if (item.name == entry) return true;
    return item.expr.kind == Expr::Kind::kColumnRef &&
           item.expr.col_name == entry;
  };

  // Aggregate-query shape checks: bare expressions must be grouped on.
  if (has_aggregate) {
    for (const BoundItem& item : items) {
      if (item.expr.is_aggregate()) continue;
      bool grouped = false;
      for (const std::string& entry : query.group_by) {
        if (covers(item, entry)) grouped = true;
      }
      if (!grouped) {
        return Status::InvalidArgument(
            "non-aggregate select item '" + item.name +
            "' must be a GROUP BY column");
      }
    }
  }

  // Bind GROUP BY entries: a select-list alias wins over a table column
  // of the same name.
  std::vector<BoundExpr> group_exprs;
  for (const std::string& entry : query.group_by) {
    const BoundItem* aliased = nullptr;
    for (const BoundItem& item : items) {
      if (!item.expr.is_aggregate() && item.name == entry) {
        aliased = &item;
        break;
      }
    }
    if (aliased != nullptr) {
      group_exprs.push_back(aliased->expr);
    } else {
      FUNGUSDB_ASSIGN_OR_RETURN(BoundExpr bound,
                                Bind(*Expr::Column(entry), schema));
      group_exprs.push_back(std::move(bound));
    }
  }

  // --- Scan & filter. ---
  //
  // 1. Prune: drop live segments whose zone maps cannot satisfy the
  //    WHERE conjuncts (counted in rows_pruned / segments_pruned).
  // 2. Filter survivors with the vectorized kernel when the predicate
  //    compiles (batch-at-a-time over raw column spans, morsel-parallel
  //    with a pool), else with the row-at-a-time tree walker.
  ResultSet result;
  std::vector<RowId> matched;
  std::vector<const Segment*> segments = table.LiveSegments();
  if (where.has_value() && options_.enable_pruning) {
    PruningPlan plan;
    CollectConjuncts(*where, plan);
    if (plan.always_false || !plan.constraints.empty()) {
      std::vector<const Segment*> survivors;
      survivors.reserve(segments.size());
      for (const Segment* seg : segments) {
        if (!plan.always_false &&
            SegmentCanMatch(*seg, plan.constraints)) {
          survivors.push_back(seg);
        } else {
          ++result.stats.segments_pruned;
          result.stats.rows_pruned += seg->live_count();
        }
      }
      segments = std::move(survivors);
    }
  }
  result.stats.segments_scanned = segments.size();
  if (options_.metrics != nullptr && result.stats.segments_pruned > 0) {
    options_.metrics->IncrementCounter(
        "fungusdb.scan.segments_pruned",
        static_cast<int64_t>(result.stats.segments_pruned));
    options_.metrics->IncrementCounter(
        "fungusdb.scan.segments_pruned", "table=" + table.name(),
        static_cast<int64_t>(result.stats.segments_pruned));
    options_.metrics->IncrementCounter(
        "fungusdb.scan.rows_pruned",
        static_cast<int64_t>(result.stats.rows_pruned));
  }

  std::optional<VectorPredicate> vec;
  if (where.has_value()) vec = VectorPredicate::Compile(*where);
  if (!where.has_value() || vec.has_value()) {
    // Batch path: evaluate over raw column spans, no per-row Value
    // boxing. With a pool and enough segments the scan is
    // morsel-driven: each surviving segment is one morsel, workers
    // claim morsels dynamically, and per-morsel outputs merge in
    // segment order so `matched` is identical to the serial scan.
    auto scan_segment = [&](const Segment& seg, std::vector<RowId>& out,
                            uint64_t& decoded) {
      if (vec.has_value()) {
        thread_local VectorPredicate::Scratch scratch;
        thread_local std::vector<uint32_t> offsets;
        offsets.clear();
        const uint64_t decoded_before = scratch.decoded_batches;
        vec->Match(seg, scratch, offsets);
        decoded += scratch.decoded_batches - decoded_before;
        out.reserve(out.size() + offsets.size());
        for (uint32_t off : offsets) out.push_back(seg.first_row() + off);
      } else {
        // No WHERE: every live row matches. Both tiers go through the
        // shared decode-to-scratch liveness routine (zero-copy on the
        // plain tier); fully-dead spans of a frozen segment are skipped
        // straight off the RLE runs.
        thread_local std::vector<uint8_t> alive_scratch;
        constexpr size_t kBatch = VectorPredicate::kBatchSize;
        alive_scratch.resize(kBatch);
        const size_t n = seg.num_rows();
        const bool frozen = seg.is_frozen();
        out.reserve(out.size() + seg.live_count());
        for (size_t base = 0; base < n; base += kBatch) {
          const size_t m = std::min(kBatch, n - base);
          if (frozen && !seg.AnyLive(base, m)) continue;
          const uint8_t* alive =
              seg.DecodeAlive(base, m, alive_scratch.data());
          if (frozen) ++decoded;
          for (size_t i = 0; i < m; ++i) {
            if (alive[i]) out.push_back(seg.first_row() + base + i);
          }
        }
      }
    };
    uint64_t decode_batches = 0;
    ThreadPool* pool = options_.pool;
    if (pool != nullptr && pool->num_threads() > 1 &&
        segments.size() >= options_.parallel_scan_min_segments) {
      std::vector<std::vector<RowId>> morsel_matched(segments.size());
      std::vector<uint64_t> morsel_decoded(segments.size(), 0);
      pool->ParallelFor(segments.size(), [&](size_t i) {
        FUNGUS_TRACE_SPAN("scan.morsel", i);
        scan_segment(*segments[i], morsel_matched[i], morsel_decoded[i]);
      });
      size_t total = 0;
      for (const auto& m : morsel_matched) total += m.size();
      matched.reserve(total);
      for (size_t i = 0; i < segments.size(); ++i) {
        result.stats.rows_scanned += segments[i]->live_count();
        decode_batches += morsel_decoded[i];
        matched.insert(matched.end(), morsel_matched[i].begin(),
                       morsel_matched[i].end());
      }
      if (options_.metrics != nullptr) {
        options_.metrics->IncrementCounter(
            "fungusdb.parallel.morsels_dispatched",
            static_cast<int64_t>(segments.size()));
      }
    } else {
      FUNGUS_TRACE_SPAN("scan.serial", segments.size());
      for (const Segment* seg : segments) {
        result.stats.rows_scanned += seg->live_count();
        scan_segment(*seg, matched, decode_batches);
      }
    }
    if (options_.metrics != nullptr && decode_batches > 0) {
      options_.metrics->IncrementCounter(
          "fungusdb.storage.decode_batches",
          static_cast<int64_t>(decode_batches));
      options_.metrics->IncrementCounter(
          "fungusdb.storage.decode_batches", "table=" + table.name(),
          static_cast<int64_t>(decode_batches));
    }
  } else {
    // Fallback: row-at-a-time tree walker over the surviving segments.
    FUNGUS_TRACE_SPAN("scan.walker", segments.size());
    size_t surviving_live = 0;
    for (const Segment* seg : segments) surviving_live += seg->live_count();
    matched.reserve(surviving_live);
    Status scan_status;
    for (const Segment* seg : segments) {
      const size_t n = seg->num_rows();
      for (size_t off = 0; off < n; ++off) {
        if (!seg->IsLive(off)) continue;
        ++result.stats.rows_scanned;
        const RowId row = seg->first_row() + off;
        Result<bool> pass = EvalPredicate(*where, table, row);
        if (!pass.ok()) {
          scan_status = pass.status();
          break;
        }
        if (*pass) matched.push_back(row);
      }
      if (!scan_status.ok()) break;
    }
    FUNGUSDB_RETURN_IF_ERROR(scan_status);
  }
  result.stats.rows_matched = matched.size();
  if (options_.metrics != nullptr && result.stats.rows_scanned > 0) {
    options_.metrics->IncrementCounter(
        "fungusdb.scan.rows_scanned", "table=" + table.name(),
        static_cast<int64_t>(result.stats.rows_scanned));
  }

  if (options_.record_access && table.options().track_access) {
    for (RowId row : matched) table.RecordAccess(row);
  }

  // --- Project / aggregate. ---
  if (!has_aggregate) {
    if (query.items.empty()) {
      // SELECT *: all user columns in schema order.
      for (const Field& f : schema.fields()) {
        result.column_names.push_back(f.name);
      }
      result.rows.reserve(matched.size());
      for (RowId row : matched) {
        std::vector<Value> out_row;
        out_row.reserve(schema.num_fields());
        for (size_t c = 0; c < schema.num_fields(); ++c) {
          FUNGUSDB_ASSIGN_OR_RETURN(Value v, table.GetValue(row, c));
          out_row.push_back(std::move(v));
        }
        result.rows.push_back(std::move(out_row));
      }
    } else {
      for (const BoundItem& item : items) {
        result.column_names.push_back(item.name);
      }
      result.rows.reserve(matched.size());
      for (RowId row : matched) {
        std::vector<Value> out_row;
        out_row.reserve(items.size());
        for (const BoundItem& item : items) {
          FUNGUSDB_ASSIGN_OR_RETURN(Value v,
                                    EvalScalar(item.expr, table, row));
          out_row.push_back(std::move(v));
        }
        result.rows.push_back(std::move(out_row));
      }
    }
  } else {
    for (const BoundItem& item : items) {
      result.column_names.push_back(item.name);
    }
    struct Group {
      std::vector<Value> key_values;          // one per group_by column
      std::vector<AggAccumulator> accumulators;  // one per aggregate item
    };
    std::map<std::string, Group> groups;
    const size_t num_aggs = items.size();

    for (RowId row : matched) {
      std::vector<Value> key_values;
      key_values.reserve(group_exprs.size());
      for (const BoundExpr& g : group_exprs) {
        FUNGUSDB_ASSIGN_OR_RETURN(Value v, EvalScalar(g, table, row));
        key_values.push_back(std::move(v));
      }
      auto [it, inserted] =
          groups.try_emplace(GroupKey(key_values));
      if (inserted) {
        it->second.key_values = key_values;
        it->second.accumulators.resize(num_aggs);
      }
      Group& group = it->second;
      const double freshness = table.Freshness(row);
      for (size_t i = 0; i < items.size(); ++i) {
        const BoundExpr& e = items[i].expr;
        if (!e.is_aggregate()) continue;
        if (e.agg_is_star()) {
          FUNGUSDB_RETURN_IF_ERROR(
              group.accumulators[i].Observe(Value::Int64(1), freshness));
        } else {
          FUNGUSDB_ASSIGN_OR_RETURN(Value v,
                                    EvalScalar(e.children[0], table, row));
          FUNGUSDB_RETURN_IF_ERROR(
              group.accumulators[i].Observe(v, freshness));
        }
      }
    }

    // Global aggregation over an empty input still yields one row.
    if (groups.empty() && query.group_by.empty()) {
      Group empty;
      empty.accumulators.resize(num_aggs);
      groups.emplace("", std::move(empty));
    }

    for (const auto& [key, group] : groups) {
      std::vector<Value> out_row;
      out_row.reserve(items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        const BoundExpr& e = items[i].expr;
        if (e.is_aggregate()) {
          out_row.push_back(
              group.accumulators[i].Finalize(e.agg_fn, e.result_type));
        } else {
          // A grouped item: find its position among group_by entries.
          size_t pos = 0;
          for (size_t g = 0; g < query.group_by.size(); ++g) {
            if (covers(items[i], query.group_by[g])) pos = g;
          }
          out_row.push_back(group.key_values[pos]);
        }
      }
      result.rows.push_back(std::move(out_row));
    }
  }

  // --- DISTINCT / ORDER BY / LIMIT. ---
  if (query.distinct) {
    // Collapse duplicate output rows, keeping first occurrences in
    // order. Keys render through Value::ToString (nulls distinct from
    // every non-null, equal to each other).
    std::set<std::string> seen;
    std::vector<std::vector<Value>> unique_rows;
    for (std::vector<Value>& row : result.rows) {
      std::string key;
      for (const Value& v : row) {
        key += v.is_null() ? "\x01" : v.ToString();
        key += '\x1F';
      }
      if (seen.insert(std::move(key)).second) {
        unique_rows.push_back(std::move(row));
      }
    }
    result.rows = std::move(unique_rows);
  }
  if (query.order_by.has_value()) {
    FUNGUSDB_RETURN_IF_ERROR(SortRows(result, *query.order_by));
  }
  if (query.limit.has_value() && result.rows.size() > *query.limit) {
    result.rows.resize(*query.limit);
  }

  // --- Law 2: consume σ_P(R). ---
  if (query.consuming && !matched.empty()) {
    for (RowId row : matched) {
      FUNGUSDB_RETURN_IF_ERROR(table.Kill(row));
    }
    result.stats.rows_consumed = matched.size();
    for (const ConsumeObserver& obs : observers_) {
      obs(table, matched, now);
    }
    table.ReclaimDeadSegments();
  }

  return result;
}

}  // namespace fungusdb
