#ifndef FUNGUSDB_QUERY_RESULT_SET_H_
#define FUNGUSDB_QUERY_RESULT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

namespace fungusdb {

/// Materialized query answer — the paper's answer set A. Plain data:
/// column names plus row-major values, with execution statistics.
struct ResultSet {
  struct Stats {
    uint64_t rows_scanned = 0;   // live tuples visited
    uint64_t rows_matched = 0;   // tuples satisfying P
    uint64_t rows_consumed = 0;  // tuples removed from R (Law 2)
    // Zone-map pruning effect. Wire protocol v1 carries only the three
    // counters above; these stay local to the process.
    uint64_t rows_pruned = 0;      // live tuples skipped via zone maps
    uint64_t segments_pruned = 0;  // segments skipped via zone maps
    uint64_t segments_scanned = 0;  // segments surviving pruning
  };

  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;
  Stats stats;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return column_names.size(); }

  const Value& at(size_t row, size_t col) const { return rows[row][col]; }

  /// Column index by name, or -1.
  int FindColumn(const std::string& name) const;

  /// Pretty-printed table, truncated to `max_rows` data rows.
  std::string ToString(size_t max_rows = 20) const;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_RESULT_SET_H_
