#ifndef FUNGUSDB_QUERY_BINDER_H_
#define FUNGUSDB_QUERY_BINDER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/expr.h"
#include "storage/schema.h"

namespace fungusdb {

/// Where a bound column reference reads from.
enum class ColumnSource {
  kUser,       // schema field `col_index`
  kTimestamp,  // the system insertion-time column `__ts`
  kFreshness,  // the system freshness column `__freshness`
};

/// Expression tree with column names resolved against a schema and
/// result types computed. Produced by Bind(); consumed by the evaluator
/// and the query engine.
struct BoundExpr {
  Expr::Kind kind = Expr::Kind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  ColumnSource col_source = ColumnSource::kUser;
  size_t col_index = 0;
  std::string col_name;

  // kBinary / kUnary / kAggregate / kFunction
  BinaryOp binary_op = BinaryOp::kEq;
  UnaryOp unary_op = UnaryOp::kNot;
  AggFn agg_fn = AggFn::kCount;
  ScalarFn scalar_fn = ScalarFn::kAbs;

  std::vector<BoundExpr> children;

  /// Static result type; nullopt only for the untyped NULL literal.
  std::optional<DataType> result_type;

  bool is_aggregate() const { return kind == Expr::Kind::kAggregate; }
  bool agg_is_star() const { return children.empty(); }
};

/// Resolves column references (including `__ts` / `__freshness`) and
/// type-checks the tree. Fails with NotFound for unknown columns and
/// TypeMismatch for ill-typed operations. Aggregate calls may appear
/// only at the positions the engine allows (it validates placement; the
/// binder only forbids nested aggregates).
Result<BoundExpr> Bind(const Expr& expr, const Schema& schema);

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_BINDER_H_
