#include "query/parser.h"

#include <cstdlib>

#include "common/string_util.h"
#include "query/lexer.h"

namespace fungusdb {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseStatement() {
    Query query;
    if (Peek().IsKeyword("CONSUME")) {
      query.consuming = true;
      Advance();
    }
    FUNGUSDB_RETURN_IF_ERROR(Expect("SELECT"));
    if (Peek().IsKeyword("DISTINCT")) {
      query.distinct = true;
      Advance();
    }

    // Select list.
    if (Peek().type == TokenType::kStar) {
      Advance();
    } else {
      while (true) {
        FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
        SelectItem item;
        item.expr = std::move(expr);
        if (Peek().IsKeyword("AS")) {
          Advance();
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected alias identifier after AS");
          }
          item.alias = Peek().text;
          Advance();
        }
        query.items.push_back(std::move(item));
        if (Peek().IsOperator(",")) {
          Advance();
          continue;
        }
        break;
      }
    }

    FUNGUSDB_RETURN_IF_ERROR(Expect("FROM"));
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected table name after FROM");
    }
    query.table_name = Peek().text;
    Advance();

    if (Peek().IsKeyword("WHERE")) {
      Advance();
      FUNGUSDB_ASSIGN_OR_RETURN(query.where, ParseExpr());
    }

    if (Peek().IsKeyword("GROUP")) {
      Advance();
      FUNGUSDB_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected column name in GROUP BY");
        }
        query.group_by.push_back(Peek().text);
        Advance();
        if (Peek().IsOperator(",")) {
          Advance();
          continue;
        }
        break;
      }
    }

    if (Peek().IsKeyword("ORDER")) {
      Advance();
      FUNGUSDB_RETURN_IF_ERROR(Expect("BY"));
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column name in ORDER BY");
      }
      OrderBy order;
      order.column = Peek().text;
      Advance();
      if (Peek().IsKeyword("DESC")) {
        order.descending = true;
        Advance();
      } else if (Peek().IsKeyword("ASC")) {
        Advance();
      }
      query.order_by = std::move(order);
    }

    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      query.limit = static_cast<uint64_t>(
          std::strtoull(Peek().text.c_str(), nullptr, 10));
      Advance();
    }

    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return query;
  }

  Result<ExprPtr> ParseBareExpression() {
    FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }

  Status Expect(std::string_view keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return Error("expected " + std::string(keyword));
    }
    Advance();
    return Status::OK();
  }

  // Precedence climbing: OR < AND < NOT < comparison < add < mul < unary.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      Advance();
      FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Peek().IsKeyword("AND")) {
      Advance();
      FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

    if (Peek().IsKeyword("IS")) {
      Advance();
      bool negated = false;
      if (Peek().IsKeyword("NOT")) {
        negated = true;
        Advance();
      }
      FUNGUSDB_RETURN_IF_ERROR(Expect("NULL"));
      return Expr::Unary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                         std::move(lhs));
    }

    if (Peek().IsKeyword("BETWEEN")) {
      Advance();
      FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      FUNGUSDB_RETURN_IF_ERROR(Expect("AND"));
      FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      // a BETWEEN x AND y  ==>  a >= x AND a <= y
      ExprPtr ge = Expr::Binary(BinaryOp::kGe, lhs, std::move(lo));
      ExprPtr le =
          Expr::Binary(BinaryOp::kLe, std::move(lhs), std::move(hi));
      return Expr::Binary(BinaryOp::kAnd, std::move(ge), std::move(le));
    }

    struct OpMap {
      const char* text;
      BinaryOp op;
    };
    constexpr OpMap kOps[] = {{"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe},
                              {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                              {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const OpMap& m : kOps) {
      if (Peek().IsOperator(m.text)) {
        Advance();
        FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Expr::Binary(m.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Peek().IsOperator("+") || Peek().IsOperator("-")) {
      const BinaryOp op =
          Peek().IsOperator("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().type == TokenType::kStar || Peek().IsOperator("/") ||
           Peek().IsOperator("%")) {
      BinaryOp op = BinaryOp::kMul;
      if (Peek().IsOperator("/")) op = BinaryOp::kDiv;
      if (Peek().IsOperator("%")) op = BinaryOp::kMod;
      Advance();
      FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().IsOperator("-")) {
      Advance();
      FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger: {
        const int64_t v = std::strtoll(tok.text.c_str(), nullptr, 10);
        Advance();
        return Expr::Literal(Value::Int64(v));
      }
      case TokenType::kFloat: {
        const double v = std::strtod(tok.text.c_str(), nullptr);
        Advance();
        return Expr::Literal(Value::Float64(v));
      }
      case TokenType::kString: {
        ExprPtr e = Expr::Literal(Value::String(tok.text));
        Advance();
        return e;
      }
      case TokenType::kKeyword: {
        if (tok.text == "TRUE" || tok.text == "FALSE") {
          const bool v = tok.text == "TRUE";
          Advance();
          return Expr::Literal(Value::Bool(v));
        }
        if (tok.text == "NULL") {
          Advance();
          return Expr::Literal(Value::Null());
        }
        return Error("unexpected keyword '" + tok.text + "'");
      }
      case TokenType::kIdentifier: {
        const std::string name = tok.text;
        Advance();
        if (Peek().IsOperator("(")) {
          return ParseAggregateCall(name);
        }
        return Expr::Column(name);
      }
      case TokenType::kOperator:
        if (tok.IsOperator("(")) {
          Advance();
          FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          if (!Peek().IsOperator(")")) return Error("expected ')'");
          Advance();
          return inner;
        }
        return Error("unexpected operator '" + tok.text + "'");
      default:
        return Error("unexpected token '" + tok.text + "'");
    }
  }

  Result<ExprPtr> ParseAggregateCall(const std::string& name) {
    struct FnMap {
      const char* name;
      AggFn fn;
    };
    constexpr FnMap kFns[] = {{"count", AggFn::kCount},
                              {"sum", AggFn::kSum},
                              {"min", AggFn::kMin},
                              {"max", AggFn::kMax},
                              {"avg", AggFn::kAvg},
                              {"fcount", AggFn::kFCount},
                              {"fsum", AggFn::kFSum},
                              {"favg", AggFn::kFAvg}};
    const std::string lower = ToLower(name);
    const FnMap* found = nullptr;
    for (const FnMap& m : kFns) {
      if (lower == m.name) {
        found = &m;
        break;
      }
    }
    if (found == nullptr) {
      return ParseScalarCall(lower, name);
    }
    Advance();  // consume '('
    if (Peek().type == TokenType::kStar) {
      if (found->fn != AggFn::kCount && found->fn != AggFn::kFCount) {
        return Error("'*' argument is only valid for COUNT and FCOUNT");
      }
      Advance();
      if (!Peek().IsOperator(")")) return Error("expected ')'");
      Advance();
      return Expr::Aggregate(found->fn, nullptr);
    }
    FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    if (!Peek().IsOperator(")")) return Error("expected ')'");
    Advance();
    return Expr::Aggregate(found->fn, std::move(arg));
  }

  Result<ExprPtr> ParseScalarCall(const std::string& lower,
                                  const std::string& original) {
    struct FnMap {
      const char* name;
      ScalarFn fn;
    };
    constexpr FnMap kFns[] = {{"abs", ScalarFn::kAbs},
                              {"floor", ScalarFn::kFloor},
                              {"ceil", ScalarFn::kCeil},
                              {"round", ScalarFn::kRound},
                              {"length", ScalarFn::kLength},
                              {"lower", ScalarFn::kLower},
                              {"upper", ScalarFn::kUpper},
                              {"time_bucket", ScalarFn::kTimeBucket}};
    const FnMap* found = nullptr;
    for (const FnMap& m : kFns) {
      if (lower == m.name) {
        found = &m;
        break;
      }
    }
    if (found == nullptr) {
      return Error("unknown function '" + original + "'");
    }
    Advance();  // consume '('
    std::vector<ExprPtr> args;
    if (!Peek().IsOperator(")")) {
      while (true) {
        FUNGUSDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
        if (Peek().IsOperator(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (!Peek().IsOperator(")")) return Error("expected ')'");
    Advance();
    return Expr::Function(found->fn, std::move(args));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view sql) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseBareExpression();
}

std::vector<std::string_view> SplitStatements(std::string_view script) {
  std::vector<std::string_view> statements;
  size_t start = 0;
  bool in_string = false;
  for (size_t i = 0; i <= script.size(); ++i) {
    const bool at_end = i == script.size();
    if (!at_end && script[i] == '\'') in_string = !in_string;
    if (!at_end && (script[i] != ';' || in_string)) continue;
    const std::string_view piece =
        StripWhitespace(script.substr(start, i - start));
    if (!piece.empty()) statements.push_back(piece);
    start = i + 1;
  }
  return statements;
}

}  // namespace fungusdb
