#ifndef FUNGUSDB_QUERY_CLASSIFIER_H_
#define FUNGUSDB_QUERY_CLASSIFIER_H_

#include <functional>
#include <string_view>

#include "query/query.h"

namespace fungusdb {

/// What a statement is allowed to do to the database — the routing
/// contract of the split execution model (DESIGN.md §13). kReadOnly
/// statements may run concurrently on the session/read path against a
/// pinned epoch; everything else belongs to the single writer that owns
/// the total order over mutations.
enum class StatementKind {
  kReadOnly,
  kMutating,
};

struct ClassifyContext {
  /// When set, SELECTs over tables for which this returns true are
  /// classified kMutating: matched-tuple access counters feed
  /// ImportanceFungus, and those bumps must stay on the writer so the
  /// read path never touches mutable storage. Unset means "no table
  /// tracks access".
  std::function<bool(std::string_view table_name)> table_tracks_access;
};

/// Classifies a parsed query. CONSUME (the second natural law removes
/// every answered tuple from R) and any future INTO / DDL forms are
/// mutating; a plain SELECT is read-only unless the target table
/// tracks access (see ClassifyContext).
StatementKind ClassifyQuery(const Query& query,
                            const ClassifyContext& context = {});

/// Classifies one statement of the wire dialect: SQL text or a
/// `\`-prefixed meta command. Conservative by construction — anything
/// that does not parse as a provably read-only form (including unknown
/// meta commands and malformed SQL) is kMutating, so it is executed by
/// the writer in total order and the error text is byte-identical to
/// the single-executor behavior.
StatementKind ClassifyStatement(std::string_view statement,
                                const ClassifyContext& context = {});

/// True for the meta commands that never mutate the database (\health,
/// \now, \metrics, \tables, \rot, \fsck, \trace): the server's read
/// workers may serve them under a pinned epoch. `command` is the bare
/// first token including the backslash.
bool IsReadOnlyMetaCommand(std::string_view command);

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_CLASSIFIER_H_
