#ifndef FUNGUSDB_QUERY_RESULT_SET_SERDE_H_
#define FUNGUSDB_QUERY_RESULT_SET_SERDE_H_

#include "common/buffer_io.h"
#include "common/result.h"
#include "query/result_set.h"

namespace fungusdb {

/// Binary encoding of a query answer for the wire protocol: column
/// names, row-major values (storage/value_serde encoding), and the
/// execution statistics. The layout is covered by the frozen-format
/// tests in tests/server/wire_format_test.cc — changing it requires a
/// wire protocol version bump.
void SerializeResultSet(const ResultSet& result, BufferWriter& out);

/// Decodes a result set written by SerializeResultSet(). All reads are
/// bounds-checked; truncation and absurd counts surface as Status
/// errors, never as unbounded allocation.
Result<ResultSet> DeserializeResultSet(BufferReader& in);

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_RESULT_SET_SERDE_H_
