#ifndef FUNGUSDB_QUERY_EVALUATOR_H_
#define FUNGUSDB_QUERY_EVALUATOR_H_

#include "common/result.h"
#include "query/binder.h"
#include "storage/table.h"

namespace fungusdb {

/// Evaluates a bound scalar expression against one tuple. SQL null
/// semantics: comparisons and arithmetic with a null operand yield null;
/// AND/OR use three-valued logic; IS [NOT] NULL always yields a bool.
/// Fails on aggregate nodes (those are folded by the engine) and on
/// division by zero.
Result<Value> EvalScalar(const BoundExpr& expr, const Table& table,
                         RowId row);

/// True iff the predicate evaluates to (non-null) true for the tuple —
/// the WHERE acceptance rule.
Result<bool> EvalPredicate(const BoundExpr& expr, const Table& table,
                           RowId row);

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_EVALUATOR_H_
