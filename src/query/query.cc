#include "query/query.h"

namespace fungusdb {

std::string Query::ToString() const {
  std::string out;
  if (consuming) out += "CONSUME ";
  out += "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (items.empty()) {
    out += "*";
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      out += items[i].expr->ToString();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  out += " FROM " + table_name;
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i];
    }
  }
  if (order_by.has_value()) {
    out += " ORDER BY " + order_by->column +
           (order_by->descending ? " DESC" : " ASC");
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  return out;
}

}  // namespace fungusdb
