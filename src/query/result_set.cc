#include "query/result_set.h"

#include <algorithm>
#include <sstream>

namespace fungusdb {

int ResultSet::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (column_names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string ResultSet::ToString(size_t max_rows) const {
  // Compute column widths over the header plus the printed rows.
  const size_t printed = std::min(max_rows, rows.size());
  std::vector<size_t> widths(column_names.size());
  std::vector<std::vector<std::string>> cells(printed);
  for (size_t c = 0; c < column_names.size(); ++c) {
    widths[c] = column_names[c].size();
  }
  for (size_t r = 0; r < printed; ++r) {
    cells[r].reserve(column_names.size());
    for (size_t c = 0; c < column_names.size(); ++c) {
      cells[r].push_back(rows[r][c].ToString());
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& fields) {
    os << "|";
    for (size_t c = 0; c < fields.size(); ++c) {
      os << " " << fields[c]
         << std::string(widths[c] - fields[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(column_names);
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (size_t r = 0; r < printed; ++r) emit_row(cells[r]);
  if (rows.size() > printed) {
    os << "... (" << rows.size() - printed << " more rows)\n";
  }
  os << "(" << rows.size() << " rows)\n";
  return os.str();
}

}  // namespace fungusdb
