#include "pipeline/ingestor.h"

#include <vector>

namespace fungusdb {

Ingestor::Ingestor(const Clock* clock, Kitchen* kitchen)
    : clock_(clock), kitchen_(kitchen) {}

Result<uint64_t> Ingestor::IngestBatch(RecordSource& source, Table& table,
                                       uint64_t max_records) {
  std::vector<RowId> appended;
  for (uint64_t i = 0; i < max_records; ++i) {
    std::optional<std::vector<Value>> record = source.Next();
    if (!record.has_value()) break;
    FUNGUSDB_ASSIGN_OR_RETURN(RowId row,
                              table.Append(*record, clock_->Now()));
    appended.push_back(row);
  }
  if (kitchen_ != nullptr && !appended.empty()) {
    kitchen_->Cook(CookTrigger::kOnIngest, table, appended, clock_->Now());
  }
  total_ingested_ += appended.size();
  return static_cast<uint64_t>(appended.size());
}

Result<uint64_t> Ingestor::IngestPaced(RecordSource& source, Table& table,
                                       uint64_t max_records,
                                       VirtualClock& vclock,
                                       Duration inter_arrival) {
  std::vector<RowId> appended;
  for (uint64_t i = 0; i < max_records; ++i) {
    std::optional<std::vector<Value>> record = source.Next();
    if (!record.has_value()) break;
    vclock.Advance(inter_arrival);
    FUNGUSDB_ASSIGN_OR_RETURN(RowId row,
                              table.Append(*record, vclock.Now()));
    appended.push_back(row);
  }
  if (kitchen_ != nullptr && !appended.empty()) {
    kitchen_->Cook(CookTrigger::kOnIngest, table, appended, vclock.Now());
  }
  total_ingested_ += appended.size();
  return static_cast<uint64_t>(appended.size());
}

}  // namespace fungusdb
