#ifndef FUNGUSDB_PIPELINE_INGESTOR_H_
#define FUNGUSDB_PIPELINE_INGESTOR_H_

#include <cstdint>

#include "common/clock.h"
#include "common/result.h"
#include "pipeline/kitchen.h"
#include "pipeline/source.h"
#include "storage/table.h"

namespace fungusdb {

/// Moves records from a source into a table, stamping each tuple with
/// the current (virtual) time and optionally cooking it on the way in
/// (the paper's "cook it into useful information a.s.a.p." policy).
class Ingestor {
 public:
  /// `clock` is required; `kitchen` may be null (no ingest cooking).
  /// Neither is owned.
  Ingestor(const Clock* clock, Kitchen* kitchen);

  Ingestor(const Ingestor&) = delete;
  Ingestor& operator=(const Ingestor&) = delete;

  /// Appends up to `max_records` from `source` into `table`, all
  /// stamped with clock->Now(). Returns the number ingested (less than
  /// `max_records` when the source dries up).
  Result<uint64_t> IngestBatch(RecordSource& source, Table& table,
                               uint64_t max_records);

  /// Like IngestBatch but advances `vclock` by `inter_arrival` before
  /// every record — a paced stream on virtual time.
  Result<uint64_t> IngestPaced(RecordSource& source, Table& table,
                               uint64_t max_records, VirtualClock& vclock,
                               Duration inter_arrival);

  uint64_t total_ingested() const { return total_ingested_; }

 private:
  const Clock* clock_;
  Kitchen* kitchen_;
  uint64_t total_ingested_ = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_PIPELINE_INGESTOR_H_
