#include "pipeline/kitchen.h"

#include "common/logging.h"

namespace fungusdb {

Kitchen::Kitchen(Cellar* cellar) : cellar_(cellar) {}

Status Kitchen::AddSpec(CookSpec spec) {
  if (spec.table_name.empty()) {
    return Status::InvalidArgument("cook spec needs a table name");
  }
  if (spec.cellar_name.empty()) {
    return Status::InvalidArgument("cook spec needs a cellar entry name");
  }
  if (spec.column.empty()) {
    return Status::InvalidArgument("cook spec needs a column");
  }
  if (spec.group_by.empty()) {
    if (spec.factory == nullptr) {
      return Status::InvalidArgument(
          "ungrouped cook spec needs a summary factory");
    }
    // The ungrouped path downcasts to ColumnSummary; verify the factory
    // honours that contract once, up front.
    std::unique_ptr<Summary> probe = spec.factory();
    if (probe == nullptr || probe->kind() == "grouped_aggregate") {
      return Status::InvalidArgument(
          "ungrouped cook spec factory must produce a column summary");
    }
  }
  specs_.push_back(std::move(spec));
  return Status::OK();
}

uint64_t Kitchen::Cook(CookTrigger trigger, Table& table,
                       const std::vector<RowId>& rows, Timestamp now) {
  uint64_t cooked = 0;
  for (const CookSpec& spec : specs_) {
    if (spec.trigger != trigger || spec.table_name != table.name()) continue;

    if (!spec.group_by.empty()) {
      auto shard = std::make_unique<GroupedAggregate>();
      for (RowId row : rows) {
        Result<Value> key = table.GetValueByName(row, spec.group_by);
        Result<Value> value = table.GetValueByName(row, spec.column);
        if (!key.ok() || !value.ok()) continue;  // row already reclaimed
        shard->Observe(*key, *value);
        ++cooked;
      }
      Status merged = cellar_->MergeInto(spec.cellar_name, std::move(shard),
                                         spec.half_life, now);
      if (!merged.ok()) {
        FUNGUSDB_LOG(Warning)
            << "kitchen: merge into '" << spec.cellar_name
            << "' failed: " << merged.ToString();
      }
      continue;
    }

    std::unique_ptr<Summary> shard = spec.factory();
    auto* column_summary = static_cast<ColumnSummary*>(shard.get());
    for (RowId row : rows) {
      Result<Value> value = table.GetValueByName(row, spec.column);
      if (!value.ok()) continue;  // row already reclaimed
      column_summary->Observe(*value);
      ++cooked;
    }
    Status merged = cellar_->MergeInto(spec.cellar_name, std::move(shard),
                                       spec.half_life, now);
    if (!merged.ok()) {
      FUNGUSDB_LOG(Warning) << "kitchen: merge into '" << spec.cellar_name
                            << "' failed: " << merged.ToString();
    }
  }
  rows_cooked_ += cooked;
  return cooked;
}

}  // namespace fungusdb
