#include "pipeline/csv.h"

#include <cstdlib>

#include "common/string_util.h"

namespace fungusdb {

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // Tolerate CRLF input.
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> ParseCsvField(const std::string& field, DataType type,
                            bool empty_is_null) {
  if (field.empty() && empty_is_null && type != DataType::kString) {
    return Value::Null();
  }
  switch (type) {
    case DataType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::ParseError("not an int64: '" + field + "'");
      }
      return Value::Int64(v);
    }
    case DataType::kFloat64: {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::ParseError("not a float64: '" + field + "'");
      }
      return Value::Float64(v);
    }
    case DataType::kBool: {
      if (EqualsIgnoreCase(field, "true") || field == "1") {
        return Value::Bool(true);
      }
      if (EqualsIgnoreCase(field, "false") || field == "0") {
        return Value::Bool(false);
      }
      return Status::ParseError("not a bool: '" + field + "'");
    }
    case DataType::kTimestamp: {
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::ParseError("not a timestamp: '" + field + "'");
      }
      return Value::TimestampVal(v);
    }
    case DataType::kString:
      return Value::String(field);
  }
  return Status::Internal("unhandled type");
}

CsvSource::CsvSource(std::istream* input, Schema schema, CsvOptions options)
    : input_(input), schema_(std::move(schema)), options_(options) {}

std::optional<std::vector<Value>> CsvSource::Next() {
  if (!status_.ok()) return std::nullopt;
  std::string line;
  while (std::getline(*input_, line)) {
    ++line_number_;
    if (options_.has_header && !header_skipped_) {
      header_skipped_ = true;
      continue;
    }
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields =
        SplitCsvLine(line, options_.delimiter);
    if (fields.size() != schema_.num_fields()) {
      status_ = Status::ParseError(
          "line " + std::to_string(line_number_) + ": expected " +
          std::to_string(schema_.num_fields()) + " fields, got " +
          std::to_string(fields.size()));
      return std::nullopt;
    }
    std::vector<Value> record;
    record.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      Result<Value> value = ParseCsvField(fields[i], schema_.field(i).type,
                                          options_.empty_is_null);
      if (!value.ok()) {
        status_ = Status::ParseError("line " +
                                     std::to_string(line_number_) + ": " +
                                     value.status().message());
        return std::nullopt;
      }
      record.push_back(std::move(*value));
    }
    ++records_read_;
    return record;
  }
  return std::nullopt;  // clean end of input
}

std::string FormatCsvField(const Value& value, char delimiter) {
  if (value.is_null()) return "";
  std::string raw;
  switch (value.type()) {
    case DataType::kInt64:
      raw = std::to_string(value.AsInt64());
      break;
    case DataType::kFloat64:
      raw = FormatDouble(value.AsFloat64(), 6);
      break;
    case DataType::kBool:
      raw = value.AsBool() ? "true" : "false";
      break;
    case DataType::kTimestamp:
      raw = std::to_string(value.AsTimestamp());
      break;
    case DataType::kString:
      raw = value.AsString();
      break;
  }
  const bool needs_quoting =
      raw.find(delimiter) != std::string::npos ||
      raw.find('"') != std::string::npos ||
      raw.find('\n') != std::string::npos;
  if (!needs_quoting) return raw;
  std::string quoted = "\"";
  for (char c : raw) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted += "\"";
  return quoted;
}

Status WriteCsv(const Table& table, std::ostream& out, CsvOptions options,
                bool include_system_columns) {
  const Schema& schema = table.schema();
  if (options.has_header) {
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      if (i > 0) out << options.delimiter;
      out << schema.field(i).name;
    }
    if (include_system_columns) {
      out << options.delimiter << kTimestampColumnName << options.delimiter
          << kFreshnessColumnName;
    }
    out << "\n";
  }
  Status status;
  table.ForEachLive([&](RowId row) {
    if (!status.ok()) return;
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) out << options.delimiter;
      Result<Value> v = table.GetValue(row, c);
      if (!v.ok()) {
        status = v.status();
        return;
      }
      out << FormatCsvField(*v, options.delimiter);
    }
    if (include_system_columns) {
      out << options.delimiter << table.InsertTime(row).value()
          << options.delimiter << FormatDouble(table.Freshness(row), 6);
    }
    out << "\n";
  });
  return status;
}

Status WriteCsv(const ResultSet& result, std::ostream& out,
                CsvOptions options) {
  if (options.has_header) {
    for (size_t i = 0; i < result.column_names.size(); ++i) {
      if (i > 0) out << options.delimiter;
      out << result.column_names[i];
    }
    out << "\n";
  }
  for (const std::vector<Value>& row : result.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << options.delimiter;
      out << FormatCsvField(row[c], options.delimiter);
    }
    out << "\n";
  }
  return Status::OK();
}

}  // namespace fungusdb
