#ifndef FUNGUSDB_PIPELINE_SOURCE_H_
#define FUNGUSDB_PIPELINE_SOURCE_H_

#include <optional>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace fungusdb {

/// A stream of records to ingest — the front of the paper's "data
/// ingestion pipeline". Implementations are the synthetic workload
/// generators in src/workload (IoT sensors, clickstream, ticks) and the
/// fixture sources used in tests.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  RecordSource(const RecordSource&) = delete;
  RecordSource& operator=(const RecordSource&) = delete;

  /// Schema every produced record conforms to.
  virtual const Schema& schema() const = 0;

  /// Produces the next record, or nullopt when the source is exhausted.
  /// Generators are typically unbounded.
  virtual std::optional<std::vector<Value>> Next() = 0;

 protected:
  RecordSource() = default;
};

/// In-memory source over a fixed vector of rows (tests, examples).
class VectorSource : public RecordSource {
 public:
  VectorSource(Schema schema, std::vector<std::vector<Value>> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const override { return schema_; }

  std::optional<std::vector<Value>> Next() override {
    if (next_ >= rows_.size()) return std::nullopt;
    return rows_[next_++];
  }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
  size_t next_ = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_PIPELINE_SOURCE_H_
