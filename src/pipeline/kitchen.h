#ifndef FUNGUSDB_PIPELINE_KITCHEN_H_
#define FUNGUSDB_PIPELINE_KITCHEN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "storage/table.h"
#include "summary/cellar.h"
#include "summary/grouped_aggregate.h"
#include "summary/summary.h"

namespace fungusdb {

/// When a cooking rule fires.
enum class CookTrigger {
  /// As tuples enter R — "cook it into useful information a.s.a.p.",
  /// the ingestion-pipeline policy.
  kOnIngest,

  /// As tuples leave R — killed by a fungus or consumed by a Law-2
  /// query. Their values are still readable (tombstoned, pre-reclaim);
  /// this is "turn rotting portions into summaries for later
  /// consumption".
  kOnRot,
};

/// One cooking rule: which tuples (table + trigger), what to distill
/// (a column, optionally grouped by another column), into which cellar
/// entry, and how fast the cooked knowledge itself decays.
struct CookSpec {
  std::string table_name;
  CookTrigger trigger = CookTrigger::kOnRot;

  /// Cellar entry the distillate merges into.
  std::string cellar_name;

  /// Column whose values are fed to the summary. May be a system
  /// column (`__ts`, `__freshness`).
  std::string column;

  /// When non-empty, cook a GroupedAggregate of `column` keyed by this
  /// column; `factory` is ignored.
  std::string group_by;

  /// Creates an empty summary shard for one batch (must be a
  /// ColumnSummary unless group_by is set).
  std::function<std::unique_ptr<Summary>()> factory;

  /// Half-life of the cellar entry; <= 0 keeps it forever.
  Duration half_life = 0;
};

/// Applies cooking rules to batches of tuples and merges the distillates
/// into the cellar. Wired by the Database as a DecayScheduler death
/// observer, a QueryEngine consume observer, and the Ingestor's
/// post-append hook.
class Kitchen {
 public:
  /// `cellar` must outlive the kitchen.
  explicit Kitchen(Cellar* cellar);

  Kitchen(const Kitchen&) = delete;
  Kitchen& operator=(const Kitchen&) = delete;

  /// Validates and registers a rule.
  Status AddSpec(CookSpec spec);

  size_t num_specs() const { return specs_.size(); }

  /// Applies every matching rule with the given trigger to `rows` of
  /// `table`. Rows must still have readable attribute values.
  /// Returns the number of (rule, row) pairs cooked.
  uint64_t Cook(CookTrigger trigger, Table& table,
                const std::vector<RowId>& rows, Timestamp now);

  uint64_t rows_cooked() const { return rows_cooked_; }

 private:
  Cellar* cellar_;
  std::vector<CookSpec> specs_;
  uint64_t rows_cooked_ = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_PIPELINE_KITCHEN_H_
