#ifndef FUNGUSDB_PIPELINE_CSV_H_
#define FUNGUSDB_PIPELINE_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "pipeline/source.h"
#include "query/result_set.h"
#include "storage/table.h"

namespace fungusdb {

struct CsvOptions {
  char delimiter = ',';

  /// Skip the first line of input / emit a header line on output.
  bool has_header = true;

  /// On input: empty fields become null (fails on non-nullable
  /// columns). On output: nulls become empty fields.
  bool empty_is_null = true;
};

/// Streams CSV rows as records conforming to `schema`. Fields are
/// converted by column type (int64/float64/bool/timestamp/string);
/// quoted fields follow RFC 4180 ("" escapes a quote). The source stops
/// at end of input or at the first malformed record — check status()
/// after the stream dries to distinguish the two.
class CsvSource : public RecordSource {
 public:
  /// `input` must outlive the source.
  CsvSource(std::istream* input, Schema schema, CsvOptions options = {});

  const Schema& schema() const override { return schema_; }
  std::optional<std::vector<Value>> Next() override;

  /// OK while healthy; a ParseError (with line number) after a
  /// malformed record stopped the stream.
  const Status& status() const { return status_; }

  /// Records produced so far.
  uint64_t records_read() const { return records_read_; }

 private:
  std::istream* input_;
  Schema schema_;
  CsvOptions options_;
  Status status_;
  uint64_t line_number_ = 0;
  bool header_skipped_ = false;
  uint64_t records_read_ = 0;
};

/// Splits one CSV line into fields (RFC 4180 quoting). Exposed for
/// tests and tooling.
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter);

/// Parses one CSV field into a Value of the given type; empty fields
/// become null when `empty_is_null`.
Result<Value> ParseCsvField(const std::string& field, DataType type,
                            bool empty_is_null);

/// Renders one value as a CSV field (quoting strings that need it).
std::string FormatCsvField(const Value& value, char delimiter);

/// Writes the live rows of `table` (user columns, plus `__ts` and
/// `__freshness` when `include_system_columns`).
Status WriteCsv(const Table& table, std::ostream& out,
                CsvOptions options = {},
                bool include_system_columns = false);

/// Writes a query answer.
Status WriteCsv(const ResultSet& result, std::ostream& out,
                CsvOptions options = {});

}  // namespace fungusdb

#endif  // FUNGUSDB_PIPELINE_CSV_H_
