#ifndef FUNGUSDB_COMMON_STRING_UTIL_H_
#define FUNGUSDB_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fungusdb {

/// "1.5 KiB", "3.2 MiB", ... (binary units).
std::string FormatBytes(uint64_t bytes);

/// Fixed-point decimal rendering, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double value, int decimals);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII case-insensitive equality (used by the SQL keyword scanner).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

/// Escapes `s` for embedding inside a JSON string literal: quote,
/// backslash and control characters become their \" / \\ / \uXXXX
/// forms. Returns the escaped body WITHOUT surrounding quotes.
std::string JsonEscape(std::string_view s);

}  // namespace fungusdb

#endif  // FUNGUSDB_COMMON_STRING_UTIL_H_
