#include "common/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>

namespace fungusdb {
namespace {

/// Index of the exponential bucket holding `value`.
int BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  // Bucket i (i >= 1) covers [2^(i-1), 2^i).
  int bits = 64 - __builtin_clzll(static_cast<uint64_t>(value));
  return std::min(bits, 63);
}

/// Lower bound of bucket i.
double BucketLow(int i) {
  return i == 0 ? 0.0 : static_cast<double>(1ULL << (i - 1));
}

/// Upper bound of bucket i.
double BucketHigh(int i) {
  return i == 0 ? 1.0 : static_cast<double>(1ULL << std::min(i, 62));
}

/// Prometheus metric names allow [a-zA-Z0-9_:] with a non-digit first
/// character; the registry's dotted names map dots (and anything else)
/// to underscores: fungusdb.decay.ticks -> fungusdb_decay_ticks.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string PromLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Renders the registry's "key=value" label string as a Prometheus
/// label pair; a label with no '=' gets the generic key "label". Extra
/// pairs (e.g. quantile) append after it.
std::string PromLabels(const std::string& label,
                       const std::string& extra = "") {
  if (label.empty() && extra.empty()) return "";
  std::string inner;
  if (!label.empty()) {
    const size_t eq = label.find('=');
    const std::string key =
        eq == std::string::npos ? "label" : PromName(label.substr(0, eq));
    const std::string value =
        eq == std::string::npos ? label : label.substr(eq + 1);
    inner = key + "=\"" + PromLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!inner.empty()) inner += ",";
    inner += extra;
  }
  return "{" + inner + "}";
}

std::string FmtDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

HistogramMetric::HistogramMetric() { Reset(); }

void HistogramMetric::Record(int64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double HistogramMetric::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
}

double HistogramMetric::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; never interpolate them.
  if (q == 0.0) return static_cast<double>(min());
  if (q == 1.0) return static_cast<double>(max());
  const double target = q * static_cast<double>(count_);
  double seen = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = seen + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const double frac = (target - seen) / static_cast<double>(buckets_[i]);
      // Bucket 0 holds every non-positive observation, so its lower
      // bound is the (possibly negative) tracked minimum, not 0.
      double lo = i == 0 ? std::min(0.0, static_cast<double>(min()))
                         : BucketLow(i);
      lo = std::max(lo, static_cast<double>(min()));
      double hi = std::min(BucketHigh(i), static_cast<double>(max()));
      if (hi < lo) hi = lo;
      return lo + frac * (hi - lo);
    }
    seen = next;
  }
  return static_cast<double>(max());
}

std::vector<std::pair<int64_t, int64_t>> HistogramMetric::CumulativeBuckets()
    const {
  std::vector<std::pair<int64_t, int64_t>> out;
  int64_t cumulative = 0;
  // Bucket 63 ([2^62, inf)) has no finite bound; it is covered by the
  // +Inf series the exposition writer derives from count().
  for (int i = 0; i < kNumBuckets - 1; ++i) {
    if (buckets_[i] == 0) continue;
    cumulative += buckets_[i];
    const int64_t le = i == 0 ? 0 : static_cast<int64_t>((1ULL << i) - 1);
    out.emplace_back(le, cumulative);
  }
  return out;
}

void HistogramMetric::Reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0;
  min_ = INT64_MAX;
  max_ = INT64_MIN;
}

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       int64_t delta) {
  IncrementCounter(name, "", delta);
}

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       const std::string& label,
                                       int64_t delta) {
  MutexLock lock(mu_);
  counters_[name][label] += delta;
}

int64_t MetricsRegistry::GetCounter(const std::string& name) const {
  return GetCounter(name, "");
}

int64_t MetricsRegistry::GetCounter(const std::string& name,
                                    const std::string& label) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  auto jt = it->second.find(label);
  return jt == it->second.end() ? 0 : jt->second;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  SetGauge(name, "", value);
}

void MetricsRegistry::SetGauge(const std::string& name,
                               const std::string& label, double value) {
  MutexLock lock(mu_);
  gauges_[name][label] = value;
}

double MetricsRegistry::GetGauge(const std::string& name) const {
  return GetGauge(name, "");
}

double MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& label) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) return 0.0;
  auto jt = it->second.find(label);
  return jt == it->second.end() ? 0.0 : jt->second;
}

void MetricsRegistry::RecordHistogram(const std::string& name,
                                      int64_t value) {
  RecordHistogram(name, "", value);
}

void MetricsRegistry::RecordHistogram(const std::string& name,
                                      const std::string& label,
                                      int64_t value) {
  MutexLock lock(mu_);
  histograms_[name][label].Record(value);
}

HistogramMetric& MetricsRegistry::Histogram(const std::string& name) {
  MutexLock lock(mu_);
  return histograms_[name][""];
}

const HistogramMetric* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  return FindHistogram(name, "");
}

const HistogramMetric* MetricsRegistry::FindHistogram(
    const std::string& name, const std::string& label) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return nullptr;
  auto jt = it->second.find(label);
  return jt == it->second.end() ? nullptr : &jt->second;
}

std::string MetricsRegistry::Report() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  auto series_name = [](const std::string& name, const std::string& label) {
    return label.empty() ? name : name + "{" + label + "}";
  };
  for (const auto& [name, by_label] : counters_) {
    for (const auto& [label, value] : by_label) {
      os << series_name(name, label) << " = " << value << "\n";
    }
  }
  for (const auto& [name, by_label] : gauges_) {
    for (const auto& [label, value] : by_label) {
      os << series_name(name, label) << " = " << value << "\n";
    }
  }
  for (const auto& [name, by_label] : histograms_) {
    for (const auto& [label, h] : by_label) {
      os << series_name(name, label) << " = {count=" << h.count()
         << " mean=" << h.Mean() << " p50=" << h.Quantile(0.5)
         << " p99=" << h.Quantile(0.99) << " max=" << h.max() << "}\n";
    }
  }
  return os.str();
}

std::string MetricsRegistry::PrometheusReport() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, by_label] : counters_) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " counter\n";
    for (const auto& [label, value] : by_label) {
      os << prom << PromLabels(label) << " " << value << "\n";
    }
  }
  for (const auto& [name, by_label] : gauges_) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " gauge\n";
    for (const auto& [label, value] : by_label) {
      os << prom << PromLabels(label) << " " << FmtDouble(value) << "\n";
    }
  }
  for (const auto& [name, by_label] : histograms_) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " histogram\n";
    for (const auto& [label, h] : by_label) {
      for (const auto& [le, cumulative] : h.CumulativeBuckets()) {
        os << prom << "_bucket"
           << PromLabels(label, "le=\"" + std::to_string(le) + "\"") << " "
           << cumulative << "\n";
      }
      // +Inf closes every histogram and always equals _count, including
      // observations in the unbounded overflow bucket.
      os << prom << "_bucket" << PromLabels(label, "le=\"+Inf\"") << " "
         << h.count() << "\n";
      os << prom << "_sum" << PromLabels(label) << " " << h.sum() << "\n";
      os << prom << "_count" << PromLabels(label) << " " << h.count()
         << "\n";
    }
  }
  return os.str();
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace fungusdb
