#include "common/metrics.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace fungusdb {
namespace {

/// Index of the exponential bucket holding `value`.
int BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  // Bucket i (i >= 1) covers [2^(i-1), 2^i).
  int bits = 64 - __builtin_clzll(static_cast<uint64_t>(value));
  return std::min(bits, 63);
}

/// Lower bound of bucket i.
double BucketLow(int i) {
  return i == 0 ? 0.0 : static_cast<double>(1ULL << (i - 1));
}

/// Upper bound of bucket i.
double BucketHigh(int i) {
  return i == 0 ? 1.0 : static_cast<double>(1ULL << std::min(i, 62));
}

}  // namespace

HistogramMetric::HistogramMetric() { Reset(); }

void HistogramMetric::Record(int64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double HistogramMetric::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
}

double HistogramMetric::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double seen = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = seen + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const double frac =
          buckets_[i] == 0 ? 0.0 : (target - seen) / buckets_[i];
      double lo = std::max(BucketLow(i), static_cast<double>(min()));
      double hi = std::min(BucketHigh(i), static_cast<double>(max()));
      if (hi < lo) hi = lo;
      return lo + frac * (hi - lo);
    }
    seen = next;
  }
  return static_cast<double>(max());
}

void HistogramMetric::Reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0;
  min_ = INT64_MAX;
  max_ = INT64_MIN;
}

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

int64_t MetricsRegistry::GetCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

double MetricsRegistry::GetGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::RecordHistogram(const std::string& name,
                                      int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Record(value);
}

HistogramMetric& MetricsRegistry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

const HistogramMetric* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " = {count=" << h.count() << " mean=" << h.Mean()
       << " p50=" << h.Quantile(0.5) << " p99=" << h.Quantile(0.99)
       << " max=" << h.max() << "}\n";
  }
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace fungusdb
