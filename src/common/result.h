#ifndef FUNGUSDB_COMMON_RESULT_H_
#define FUNGUSDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fungusdb {

/// Either a value of type T or a non-OK Status explaining why the value
/// could not be produced. The FungusDB analogue of absl::StatusOr<T>.
///
///   Result<Table> r = OpenTable(name);
///   if (!r.ok()) return r.status();
///   Table& t = r.value();
///
/// [[nodiscard]] for the same reason Status is: an ignored Result is an
/// ignored error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : value_(std::move(value)) {}

  /// Constructs from a non-OK status (implicit so `return status;` works).
  /// Constructing from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result<T> requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked in debug builds.
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fungusdb

/// Evaluates `rexpr` (a Result<T>), propagating its status on error and
/// otherwise binding the value to `lhs`.
#define FUNGUSDB_ASSIGN_OR_RETURN(lhs, rexpr)           \
  FUNGUSDB_ASSIGN_OR_RETURN_IMPL_(                      \
      FUNGUSDB_CONCAT_(_fungusdb_result, __LINE__), lhs, rexpr)

#define FUNGUSDB_CONCAT_INNER_(a, b) a##b
#define FUNGUSDB_CONCAT_(a, b) FUNGUSDB_CONCAT_INNER_(a, b)

#define FUNGUSDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#endif  // FUNGUSDB_COMMON_RESULT_H_
