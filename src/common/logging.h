#ifndef FUNGUSDB_COMMON_LOGGING_H_
#define FUNGUSDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fungusdb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Defaults to
/// kWarning so library users see problems but tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Use via FUNGUSDB_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace fungusdb

#define FUNGUSDB_LOG(level)                                       \
  ::fungusdb::internal_logging::LogMessage(                       \
      ::fungusdb::LogLevel::k##level, __FILE__, __LINE__)

#endif  // FUNGUSDB_COMMON_LOGGING_H_
