#ifndef FUNGUSDB_COMMON_BUFFER_IO_H_
#define FUNGUSDB_COMMON_BUFFER_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fungusdb {

/// Append-only little-endian binary encoder used by the snapshot
/// format. Fixed-width integers, IEEE doubles, and length-prefixed
/// byte strings.
class BufferWriter {
 public:
  BufferWriter() = default;

  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }

  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  /// Length-prefixed (u64) byte string.
  void WriteString(std::string_view s) {
    WriteU64(s.size());
    buffer_.append(s.data(), s.size());
  }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  void WriteRaw(const void* data, size_t len) {
    buffer_.append(static_cast<const char*>(data), len);
  }

  std::string buffer_;
};

/// Bounds-checked decoder over a byte span. All reads fail with
/// OutOfRange instead of walking past the end, so corrupt or truncated
/// snapshots surface as Status errors rather than undefined behaviour.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<bool> ReadBool();
  Result<std::string> ReadString();

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t bytes) {
    if (remaining() < bytes) {
      return Status::OutOfRange(
          "snapshot truncated: need " + std::to_string(bytes) +
          " bytes, have " + std::to_string(remaining()));
    }
    return Status::OK();
  }

  template <typename T>
  Result<T> ReadRaw() {
    FUNGUSDB_RETURN_IF_ERROR(Need(sizeof(T)));
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_COMMON_BUFFER_IO_H_
