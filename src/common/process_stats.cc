#include "common/process_stats.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace fungusdb {
namespace {

/// Anchor for uptime, captured during static initialization so the
/// first scrape already reports real process age (a lazily-seeded
/// anchor would make whichever endpoint runs first report ~0).
const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

#if defined(__linux__)
void ReadLinuxMemory(ProcessStats& stats) {
  std::ifstream statm("/proc/self/statm");
  long long vm_pages = 0;
  long long rss_pages = 0;
  if (statm >> vm_pages >> rss_pages) {
    const long page = sysconf(_SC_PAGESIZE);
    stats.vm_bytes = static_cast<int64_t>(vm_pages) * page;
    stats.rss_bytes = static_cast<int64_t>(rss_pages) * page;
  }
}

void ReadLinuxThreads(ProcessStats& stats) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      std::istringstream fields(line.substr(8));
      fields >> stats.threads;
      return;
    }
  }
}

void ReadLinuxFds(ProcessStats& stats) {
  std::error_code ec;
  int64_t count = 0;
  for (auto it = std::filesystem::directory_iterator("/proc/self/fd", ec);
       !ec && it != std::filesystem::directory_iterator(); it.increment(ec)) {
    ++count;
  }
  // The directory iterator itself holds one descriptor while counting.
  stats.open_fds = count > 0 ? count - 1 : 0;
}
#endif  // __linux__

}  // namespace

ProcessStats ReadProcessStats(const std::string& snapshot_path) {
  ProcessStats stats;
  const auto now = std::chrono::steady_clock::now();
  stats.uptime_seconds =
      std::chrono::duration<double>(now - kProcessStart).count();
#if defined(__linux__)
  ReadLinuxMemory(stats);
  ReadLinuxThreads(stats);
  ReadLinuxFds(stats);
#endif
  if (!snapshot_path.empty()) {
    std::error_code ec;
    const auto written =
        std::filesystem::last_write_time(snapshot_path, ec);
    if (!ec) {
      const auto age = std::filesystem::file_time_type::clock::now() - written;
      stats.snapshot_age_seconds =
          std::max(0.0, std::chrono::duration<double>(age).count());
    }
  }
  return stats;
}

void UpdateProcessGauges(MetricsRegistry& registry,
                         const std::string& snapshot_path) {
  const ProcessStats stats = ReadProcessStats(snapshot_path);
  registry.SetGauge("fungusdb.process.uptime_seconds", stats.uptime_seconds);
  registry.SetGauge("fungusdb.process.rss_bytes",
                    static_cast<double>(stats.rss_bytes));
  registry.SetGauge("fungusdb.process.vm_bytes",
                    static_cast<double>(stats.vm_bytes));
  registry.SetGauge("fungusdb.process.open_fds",
                    static_cast<double>(stats.open_fds));
  registry.SetGauge("fungusdb.process.threads",
                    static_cast<double>(stats.threads));
  registry.SetGauge("fungusdb.process.snapshot_age_seconds",
                    stats.snapshot_age_seconds);
}

}  // namespace fungusdb
