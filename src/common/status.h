#ifndef FUNGUSDB_COMMON_STATUS_H_
#define FUNGUSDB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "fungusdb/error_code.h"

namespace fungusdb {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kParseError,
  kTypeMismatch,
  kResourceExhausted,
  kUnavailable,
  kDeadlineExceeded,
};

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// Default public error number for an in-process category (e.g.
/// kNotFound -> ErrorCode::kNotFound). Call sites that know a more
/// specific code (TableNotFound, Overloaded, ...) pass it explicitly.
ErrorCode ErrorCodeForStatusCode(StatusCode code);

/// Coarse category for a public error number — how a client
/// reconstructs a Status from the wire (e.g. kTableNotFound ->
/// kNotFound).
StatusCode StatusCodeForErrorCode(ErrorCode code);

/// Value-semantic error type used throughout FungusDB instead of
/// exceptions. An OK status carries no message and no allocation.
///
/// Functions that can fail return `Status` (or `Result<T>` when they also
/// produce a value). Callers must check before using dependent results;
/// the FUNGUSDB_RETURN_IF_ERROR macro keeps propagation terse. The class
/// is [[nodiscard]]: silently dropping an error is a compile error, so a
/// caller that truly wants to ignore one must say so in code (and the
/// lint pass flags even that outside test code).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code),
        error_code_(ErrorCodeForStatusCode(code)),
        message_(std::move(message)) {}

  /// Carries a specific public error number alongside the category.
  /// Used by call sites whose failure has a stable wire identity
  /// (TableNotFound, Overloaded, Timeout, ...).
  Status(StatusCode code, ErrorCode error_code, std::string message)
      : code_(code), error_code_(error_code),
        message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  // Factories with a specific public error number.
  static Status TableNotFound(std::string msg) {
    return Status(StatusCode::kNotFound, ErrorCode::kTableNotFound,
                  std::move(msg));
  }
  static Status ColumnNotFound(std::string msg) {
    return Status(StatusCode::kNotFound, ErrorCode::kColumnNotFound,
                  std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kUnavailable, ErrorCode::kOverloaded,
                  std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, ErrorCode::kTimeout,
                  std::move(msg));
  }
  static Status ShuttingDown(std::string msg) {
    return Status(StatusCode::kUnavailable, ErrorCode::kShuttingDown,
                  std::move(msg));
  }
  static Status WireFormat(std::string msg) {
    return Status(StatusCode::kParseError, ErrorCode::kWireFormat,
                  std::move(msg));
  }
  static Status ConnectionClosed(std::string msg) {
    return Status(StatusCode::kUnavailable, ErrorCode::kConnectionClosed,
                  std::move(msg));
  }

  /// Rebuilds the status a server sent over the wire: the category is
  /// derived from the public error number.
  static Status FromWire(ErrorCode error_code, std::string msg) {
    return Status(StatusCodeForErrorCode(error_code), error_code,
                  std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }

  /// Stable public error number (ErrorCode::kOk for an OK status).
  ErrorCode error_code() const { return error_code_; }

  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// "E:<number> <ErrorCodeName>", e.g. "E:1203 TableNotFound" — the
  /// client-facing rendering fungusql and fungusd prepend to messages.
  std::string ErrorLabel() const;

 private:
  StatusCode code_;
  ErrorCode error_code_ = ErrorCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.error_code() == b.error_code() &&
         a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace fungusdb

/// Propagates a non-OK Status from the current function.
#define FUNGUSDB_RETURN_IF_ERROR(expr)                    \
  do {                                                    \
    ::fungusdb::Status _fungusdb_status = (expr);         \
    if (!_fungusdb_status.ok()) return _fungusdb_status;  \
  } while (false)

namespace fungusdb::internal_status {
/// Aborts with the status message; used by FUNGUSDB_CHECK_OK.
[[noreturn]] void DieOnError(const Status& status, const char* expr,
                             const char* file, int line);
}  // namespace fungusdb::internal_status

/// Aborts the process when `expr` yields a non-OK Status. For examples,
/// tools, and benchmark setup code where failure is a programming error;
/// library code propagates Status instead.
#define FUNGUSDB_CHECK_OK(expr)                                         \
  do {                                                                  \
    ::fungusdb::Status _fungusdb_status = (expr);                       \
    if (!_fungusdb_status.ok()) {                                       \
      ::fungusdb::internal_status::DieOnError(_fungusdb_status, #expr,  \
                                              __FILE__, __LINE__);      \
    }                                                                   \
  } while (false)

#endif  // FUNGUSDB_COMMON_STATUS_H_
