#include "common/random.h"

#include <cassert>
#include <cmath>

namespace fungusdb {
namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t SplitSeed(uint64_t seed, uint64_t stream) {
  SplitMix64 sm(seed ^ ((stream + 1) * 0x9E3779B97F4A7C15ULL));
  return sm.Next();
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(range));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextExponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

Rng Rng::Split() { return Rng(NextUint64()); }

Zipfian::Zipfian(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t Zipfian::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace fungusdb
