#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace fungusdb {

std::string FormatBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace fungusdb
