#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace fungusdb {

std::atomic<bool> Tracer::enabled_flag_{false};

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

uint64_t Tracer::NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

Tracer::ThreadBuffer& Tracer::BufferForThisThread() {
  // One tracer per process (Global()), so a plain thread_local pointer
  // is the whole fast-path lookup.
  thread_local ThreadBuffer* mine = nullptr;
  if (mine == nullptr) {
    MutexLock lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        static_cast<uint32_t>(buffers_.size() + 1)));
    mine = buffers_.back().get();
  }
  return *mine;
}

void Tracer::Record(const char* name, uint64_t start_us, uint64_t dur_us,
                    uint64_t arg, bool has_arg) {
  ThreadBuffer& buf = BufferForThisThread();
  const uint64_t h = buf.head.load(std::memory_order_relaxed);
  Slot& slot = buf.slots[h % kEventsPerThread];
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_us.store(start_us, std::memory_order_relaxed);
  slot.dur_us.store(dur_us, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.has_arg.store(has_arg ? 1 : 0, std::memory_order_relaxed);
  buf.head.store(h + 1, std::memory_order_release);
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  for (const std::unique_ptr<ThreadBuffer>& buf : buffers_) {
    // Resetting head effectively forgets the ring's contents. A thread
    // recording concurrently at the old head just lands its next event
    // at index 0 — fine for a diagnostic trace.
    buf->head.store(0, std::memory_order_release);
  }
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> events;
  MutexLock lock(mu_);
  for (const std::unique_ptr<ThreadBuffer>& buf : buffers_) {
    const uint64_t head = buf->head.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(head, kEventsPerThread);
    for (uint64_t i = head - n; i < head; ++i) {
      const Slot& slot = buf->slots[i % kEventsPerThread];
      TraceEvent e;
      e.name = slot.name.load(std::memory_order_relaxed);
      if (e.name == nullptr) continue;  // being written right now
      e.start_us = slot.start_us.load(std::memory_order_relaxed);
      e.dur_us = slot.dur_us.load(std::memory_order_relaxed);
      e.arg = slot.arg.load(std::memory_order_relaxed);
      e.has_arg = slot.has_arg.load(std::memory_order_relaxed) != 0;
      e.tid = buf->tid;
      events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.tid < b.tid;
            });
  return events;
}

std::string Tracer::ExportChromeJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    // Span names are C identifiers-with-dots from span sites; nothing
    // needs escaping.
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"fungusdb\","
       << "\"ph\":\"X\",\"ts\":" << e.start_us << ",\"dur\":" << e.dur_us
       << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.has_arg) os << ",\"args\":{\"v\":" << e.arg << "}";
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

uint64_t Tracer::events_recorded() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const std::unique_ptr<ThreadBuffer>& buf : buffers_) {
    total += buf->head.load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace fungusdb
