#include "common/status.h"
#include <cstdio>
#include <cstdlib>

namespace fungusdb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void DieOnError(const Status& status, const char* expr, const char* file,
                int line) {
  std::fprintf(stderr, "FUNGUSDB_CHECK_OK failed at %s:%d: %s -> %s\n",
               file, line, expr, status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace fungusdb
