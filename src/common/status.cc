#include "common/status.h"
#include <cstdio>
#include <cstdlib>

namespace fungusdb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

ErrorCode ErrorCodeForStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return ErrorCode::kOk;
    case StatusCode::kInvalidArgument:
      return ErrorCode::kInvalidArgument;
    case StatusCode::kNotFound:
      return ErrorCode::kNotFound;
    case StatusCode::kAlreadyExists:
      return ErrorCode::kAlreadyExists;
    case StatusCode::kOutOfRange:
      return ErrorCode::kOutOfRange;
    case StatusCode::kFailedPrecondition:
      return ErrorCode::kFailedPrecondition;
    case StatusCode::kUnimplemented:
      return ErrorCode::kUnimplemented;
    case StatusCode::kInternal:
      return ErrorCode::kInternal;
    case StatusCode::kParseError:
      return ErrorCode::kParseError;
    case StatusCode::kTypeMismatch:
      return ErrorCode::kTypeMismatch;
    case StatusCode::kResourceExhausted:
      return ErrorCode::kResourceExhausted;
    case StatusCode::kUnavailable:
      return ErrorCode::kOverloaded;
    case StatusCode::kDeadlineExceeded:
      return ErrorCode::kTimeout;
  }
  return ErrorCode::kInternal;
}

StatusCode StatusCodeForErrorCode(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return StatusCode::kOk;
    case ErrorCode::kInvalidArgument:
      return StatusCode::kInvalidArgument;
    case ErrorCode::kOutOfRange:
      return StatusCode::kOutOfRange;
    case ErrorCode::kFailedPrecondition:
      return StatusCode::kFailedPrecondition;
    case ErrorCode::kParseError:
    case ErrorCode::kWireFormat:
      return StatusCode::kParseError;
    case ErrorCode::kTypeMismatch:
      return StatusCode::kTypeMismatch;
    case ErrorCode::kNotFound:
    case ErrorCode::kTableNotFound:
    case ErrorCode::kColumnNotFound:
      return StatusCode::kNotFound;
    case ErrorCode::kAlreadyExists:
      return StatusCode::kAlreadyExists;
    case ErrorCode::kResourceExhausted:
      return StatusCode::kResourceExhausted;
    case ErrorCode::kOverloaded:
    case ErrorCode::kShuttingDown:
    case ErrorCode::kConnectionClosed:
      return StatusCode::kUnavailable;
    case ErrorCode::kTimeout:
      return StatusCode::kDeadlineExceeded;
    case ErrorCode::kUnimplemented:
      return StatusCode::kUnimplemented;
    case ErrorCode::kInternal:
    case ErrorCode::kDataCorruption:
      return StatusCode::kInternal;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::string Status::ErrorLabel() const {
  std::string out = "E:";
  out += std::to_string(static_cast<uint16_t>(error_code_));
  out += ' ';
  out += ErrorCodeName(error_code_);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void DieOnError(const Status& status, const char* expr, const char* file,
                int line) {
  std::fprintf(stderr, "FUNGUSDB_CHECK_OK failed at %s:%d: %s -> %s\n",
               file, line, expr, status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace fungusdb
