#ifndef FUNGUSDB_COMMON_THREAD_ANNOTATIONS_H_
#define FUNGUSDB_COMMON_THREAD_ANNOTATIONS_H_

/// Capability annotations for Clang's Thread Safety Analysis
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), the
/// compile-time half of the concurrency contract (DESIGN.md §13).
///
/// Under clang with -Wthread-safety these expand to the attributes the
/// analysis checks: which fields a lock guards, which capability a
/// function requires, which calls acquire and release. Everywhere else
/// (the GCC tier-1 build) they expand to nothing, so the annotations
/// are free documentation on non-clang toolchains. The CI
/// `thread-safety` job builds with
///   -Wthread-safety -Wthread-safety-beta -Werror=thread-safety
/// so a violation — say, a read-worker path calling an API annotated
/// FUNGUS_REQUIRES(epoch) — is a build error, not a TSan repro.
///
/// tools/analyze/capability_audit.py is the companion pass: it fails
/// the lint job if a mutex-owning class has mutable members without a
/// FUNGUS_GUARDED_BY, so the annotations cannot silently rot.

#if defined(__clang__) && (!defined(SWIG))
#define FUNGUS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FUNGUS_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a named capability (a lock, or something lock-like
/// such as the epoch write section).
#define FUNGUS_CAPABILITY(x) FUNGUS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires a capability and
/// whose destructor releases it (MutexLock, ReadPin, WriteGuard).
#define FUNGUS_SCOPED_CAPABILITY FUNGUS_THREAD_ANNOTATION_(scoped_lockable)

/// The field may only be touched while `x` is held (shared for reads,
/// exclusive for writes).
#define FUNGUS_GUARDED_BY(x) FUNGUS_THREAD_ANNOTATION_(guarded_by(x))

/// The pointee may only be touched while `x` is held.
#define FUNGUS_PT_GUARDED_BY(x) FUNGUS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Callers must hold the capability exclusively (writer APIs).
#define FUNGUS_REQUIRES(...) \
  FUNGUS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Callers must hold the capability at least shared (reader APIs).
#define FUNGUS_REQUIRES_SHARED(...) \
  FUNGUS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function (or constructor) acquires the capability exclusively.
#define FUNGUS_ACQUIRE(...) \
  FUNGUS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function (or constructor) acquires the capability shared.
#define FUNGUS_ACQUIRE_SHARED(...) \
  FUNGUS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases an exclusively-held capability.
#define FUNGUS_RELEASE(...) \
  FUNGUS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function releases a shared-held capability.
#define FUNGUS_RELEASE_SHARED(...) \
  FUNGUS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function releases a capability held either way — the right
/// annotation for destructors of guards that may hold shared.
#define FUNGUS_RELEASE_GENERIC(...) \
  FUNGUS_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define FUNGUS_TRY_ACQUIRE(b, ...) \
  FUNGUS_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Callers must NOT hold the capability (deadlock prevention).
#define FUNGUS_EXCLUDES(...) \
  FUNGUS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (no acquire emitted).
#define FUNGUS_ASSERT_CAPABILITY(x) \
  FUNGUS_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the named capability, so
/// `db.epochs()` and `db.epochs_` are the same lock to the analysis.
#define FUNGUS_RETURN_CAPABILITY(x) \
  FUNGUS_THREAD_ANNOTATION_(lock_returned(x))

/// Turns checking off inside one function body. Reserved for the
/// implementation of locking primitives themselves (EpochManager's
/// internals lie to the analysis by design: a condvar wait releases
/// and reacquires invisibly) — never for silencing a real finding;
/// capability_audit.py counts uses outside the allowlisted files.
#define FUNGUS_NO_THREAD_SAFETY_ANALYSIS \
  FUNGUS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // FUNGUSDB_COMMON_THREAD_ANNOTATIONS_H_
