#ifndef FUNGUSDB_COMMON_RANDOM_H_
#define FUNGUSDB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fungusdb {

/// SplitMix64 — used to expand a single 64-bit seed into a full generator
/// state. Reference: Steele, Lea & Flood, "Fast splittable pseudorandom
/// number generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

/// Xoshiro256++ — the deterministic PRNG used by every stochastic
/// component in FungusDB (fungus seeding, workload generation, sampling).
/// All randomness flows through explicitly seeded instances so decay and
/// experiments are reproducible; std::mt19937 and std::random_device are
/// deliberately not used.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x5EEDFA57C0FFEE42ULL);

  /// Uniform 64 random bits.
  uint64_t NextUint64();

  /// Uniform in [0, bound). Requires bound > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Exponential with rate lambda (> 0).
  double NextExponential(double lambda);

  /// A fresh generator whose stream is independent of this one.
  Rng Split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Mixes a base seed with a stream index into an independent stream seed
/// (SplitMix64 over the golden-ratio-spread index). Used to split one
/// fungus seed into per-(tick, shard) RNG streams that are deterministic
/// regardless of how many threads execute the shards.
uint64_t SplitSeed(uint64_t seed, uint64_t stream);

/// Zipfian generator over [0, n) with skew parameter theta in [0, 1).
/// theta = 0 is uniform; typical "skewed" workloads use 0.8-0.99.
/// Uses the Gray et al. (SIGMOD 1994) rejection-free formula with
/// precomputed constants, as popularized by YCSB.
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta);

  /// Number of distinct items.
  uint64_t n() const { return n_; }

  uint64_t Next(Rng& rng);

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_COMMON_RANDOM_H_
