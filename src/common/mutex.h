#ifndef FUNGUSDB_COMMON_MUTEX_H_
#define FUNGUSDB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace fungusdb {

/// The project mutex: std::mutex wearing the FUNGUS_CAPABILITY badge so
/// Clang's Thread Safety Analysis can check FUNGUS_GUARDED_BY fields
/// against it. Raw std::mutex is banned outside this header
/// (capability_audit.py `raw-mutex` rule) because the analysis cannot
/// see through an unannotated lock — every acquisition would be
/// invisible and every guarded access would look like a race.
///
/// Zero-cost: the wrapper is a std::mutex plus inline forwarding, and
/// every annotation macro expands to nothing outside clang.
class FUNGUS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FUNGUS_ACQUIRE() { mu_.lock(); }
  void Unlock() FUNGUS_RELEASE() { mu_.unlock(); }
  bool TryLock() FUNGUS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock — the only way code outside this header takes a Mutex.
/// Scoped-capability form keeps acquire/release visibly paired for the
/// analysis; an early-out path can still drop the lock in a nested
/// block, exactly like std::lock_guard.
class FUNGUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FUNGUS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FUNGUS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Deliberately predicate-free: callers
/// write the standard
///
///   MutexLock lock(mu_);
///   while (!condition) cv_.Wait(mu_);
///
/// loop themselves, so the guarded reads in `condition` sit in the
/// caller's body where the analysis can see the held lock (a predicate
/// lambda would be analyzed as a separate, lock-blind function), and
/// the spurious-wakeup re-check is structurally guaranteed.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, reacquires before returning.
  /// The release/reacquire happens inside the native wait, invisibly
  /// to the analysis — which is correct: the caller holds `mu` both on
  /// entry and on exit, and must re-check its condition in a loop.
  void Wait(Mutex& mu) FUNGUS_REQUIRES(mu) { cv_.wait(mu.mu_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // _any because it waits on the raw std::mutex inside Mutex rather
  // than a std::unique_lock; one virtual dispatch per block/wake is
  // noise next to the context switch it accompanies.
  std::condition_variable_any cv_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_COMMON_MUTEX_H_
