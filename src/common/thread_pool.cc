#include "common/thread_pool.h"

#include <chrono>

namespace fungusdb {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t spawn = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(spawn);
  for (size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

void ParallelForDrive(std::atomic<size_t>& cursor, size_t n,
                      const std::function<void(size_t)>& fn) {
  for (size_t i; (i = cursor.fetch_add(1, std::memory_order_relaxed)) < n;) {
    fn(i);
  }
}

}  // namespace

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  tasks_dispatched_ += n;
  if (workers_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> cursor{0};
  // One helper per worker, capped so no helper can start with nothing
  // left to claim.
  const size_t helpers = std::min(workers_.size(), n - 1);
  std::atomic<size_t> remaining{helpers};
  Mutex done_mu;
  CondVar done_cv;
  {
    MutexLock lock(mu_);
    for (size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([&] {
        ParallelForDrive(cursor, n, fn);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Lock/unlock pairs with the coordinator's wait-loop check so
          // the notify cannot be lost between its test and its wait.
          MutexLock done_lock(done_mu);
          done_cv.NotifyOne();
        }
      });
    }
  }
  work_cv_.NotifyAll();
  ParallelForDrive(cursor, n, fn);
  const auto wait_start = std::chrono::steady_clock::now();
  {
    MutexLock done_lock(done_mu);
    while (remaining.load(std::memory_order_acquire) != 0) {
      done_cv.Wait(done_mu);
    }
  }
  barrier_wait_micros_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wait_start)
          .count());
}

}  // namespace fungusdb
