#ifndef FUNGUSDB_COMMON_PROCESS_STATS_H_
#define FUNGUSDB_COMMON_PROCESS_STATS_H_

#include <string>

#include "common/metrics.h"

namespace fungusdb {

/// Snapshot of process-level health read from the OS (Linux procfs when
/// available; zeroed fields elsewhere). All sizes in bytes.
struct ProcessStats {
  double uptime_seconds = 0.0;   ///< Since the first stats call in-process.
  int64_t rss_bytes = 0;         ///< Resident set size.
  int64_t vm_bytes = 0;          ///< Virtual memory size.
  int64_t open_fds = 0;          ///< Open descriptors (sockets included).
  int64_t threads = 0;           ///< OS threads in the process.
  /// Seconds since the snapshot file was last written; -1.0 when no
  /// snapshot path is configured or the file does not exist yet.
  double snapshot_age_seconds = -1.0;
};

/// Reads current process stats. `snapshot_path` may be empty.
ProcessStats ReadProcessStats(const std::string& snapshot_path);

/// Publishes `fungusdb.process.*` gauges into `registry` so /metrics and
/// /varz render the same numbers from one source of truth. Call at scrape
/// time — gauges are point-in-time, not sampled on a timer.
void UpdateProcessGauges(MetricsRegistry& registry,
                         const std::string& snapshot_path = "");

}  // namespace fungusdb

#endif  // FUNGUSDB_COMMON_PROCESS_STATS_H_
