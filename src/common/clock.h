#ifndef FUNGUSDB_COMMON_CLOCK_H_
#define FUNGUSDB_COMMON_CLOCK_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace fungusdb {

/// Timestamps and durations are microseconds since an arbitrary epoch,
/// stored as signed 64-bit integers. The paper's per-tuple `t` column and
/// the fungus clock period `T` both use this unit.
using Timestamp = int64_t;
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

/// Renders a duration as a compact human string, e.g. "2d3h" or "450ms".
std::string FormatDuration(Duration d);

/// Parses compact duration strings: concatenated <number><unit> parts
/// with units d/h/m/s/ms/us, e.g. "2d3h", "90m", "450ms", "10s".
/// The inverse of FormatDuration.
Result<Duration> ParseDuration(std::string_view text);

/// Source of time. Fungi, schedulers, and ingestion read time only
/// through this interface so experiments can run on virtual time.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since the clock's epoch.
  virtual Timestamp Now() const = 0;
};

/// Manually-advanced clock. The default for tests and benchmarks: decay
/// over "30 days" runs in milliseconds of wall time and is exactly
/// reproducible.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override { return now_; }

  /// Moves time forward by `d` (>= 0).
  void Advance(Duration d);

  /// Jumps to an absolute time (must not move backwards).
  void SetTime(Timestamp t);

 private:
  Timestamp now_;
};

/// Wall-clock time (CLOCK_MONOTONIC-based, offset to start near 0).
class SystemClock : public Clock {
 public:
  SystemClock();

  Timestamp Now() const override;

 private:
  Timestamp epoch_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_COMMON_CLOCK_H_
