#include "common/buffer_io.h"

namespace fungusdb {

Result<uint8_t> BufferReader::ReadU8() { return ReadRaw<uint8_t>(); }
Result<uint32_t> BufferReader::ReadU32() { return ReadRaw<uint32_t>(); }
Result<uint64_t> BufferReader::ReadU64() { return ReadRaw<uint64_t>(); }
Result<int64_t> BufferReader::ReadI64() { return ReadRaw<int64_t>(); }
Result<double> BufferReader::ReadDouble() { return ReadRaw<double>(); }

Result<bool> BufferReader::ReadBool() {
  FUNGUSDB_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  return v != 0;
}

Result<std::string> BufferReader::ReadString() {
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  FUNGUSDB_RETURN_IF_ERROR(Need(len));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

}  // namespace fungusdb
