#ifndef FUNGUSDB_COMMON_THREAD_POOL_H_
#define FUNGUSDB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fungusdb {

/// A small fixed-size worker pool for shard-parallel phases (decay ticks,
/// morsel scans). The calling thread always participates in ParallelFor,
/// so a pool of size N uses N-1 background workers; size <= 1 spawns no
/// threads at all and every call runs inline — which is also the
/// determinism baseline the parallel tests compare against.
///
/// FungusDB's parallel phases are structured fork/join: the single
/// coordinator thread calls ParallelFor and blocks until every index has
/// been processed. Work distribution is morsel-style (a shared atomic
/// cursor), so uneven shards load-balance automatically, while all
/// outputs are indexed by morsel so merge order never depends on which
/// worker ran what.
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread; the pool spawns
  /// num_threads - 1 workers. 0 is clamped to 1 (fully inline).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Total execution width including the caller.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), distributing indices over the
  /// workers and the calling thread; returns after all n calls finished.
  /// fn must not call back into the same pool (no nested forks) and must
  /// not throw.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Microseconds the coordinator spent blocked waiting for stragglers
  /// after finishing its own share, summed over all ParallelFor calls.
  uint64_t barrier_wait_micros() const { return barrier_wait_micros_; }

  /// Total ParallelFor indices dispatched (morsels + shard tasks).
  uint64_t tasks_dispatched() const { return tasks_dispatched_; }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_cv_;
  std::deque<std::function<void()>> queue_ FUNGUS_GUARDED_BY(mu_);
  bool stopping_ FUNGUS_GUARDED_BY(mu_) = false;
  // Coordinator-thread bookkeeping: written only inside ParallelFor and
  // read between calls, so the fork/join structure (not mu_) orders it.
  // capability_audit.py carries the justified-allowlist entries.
  uint64_t barrier_wait_micros_ = 0;
  uint64_t tasks_dispatched_ = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_COMMON_THREAD_POOL_H_
