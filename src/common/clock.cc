#include "common/clock.h"

#include <cassert>
#include <chrono>

namespace fungusdb {

std::string FormatDuration(Duration d) {
  if (d < 0) {
    // Built via += rather than `"-" + ...` to dodge a GCC 12 -Wrestrict
    // false positive on the inlined string insert (GCC PR 105651).
    std::string negated = "-";
    negated += FormatDuration(-d);
    return negated;
  }
  if (d == 0) return "0us";
  std::string out;
  struct Unit {
    Duration size;
    const char* name;
  };
  constexpr Unit kUnits[] = {{kDay, "d"},           {kHour, "h"},
                             {kMinute, "m"},        {kSecond, "s"},
                             {kMillisecond, "ms"},  {kMicrosecond, "us"}};
  int parts = 0;
  for (const Unit& u : kUnits) {
    if (d >= u.size && parts < 2) {
      out += std::to_string(d / u.size);
      out += u.name;
      d %= u.size;
      ++parts;
    }
  }
  return out;
}

Result<Duration> ParseDuration(std::string_view text) {
  if (text.empty()) {
    return Status::ParseError("empty duration");
  }
  Duration total = 0;
  size_t i = 0;
  while (i < text.size()) {
    size_t digits_end = i;
    while (digits_end < text.size() && text[digits_end] >= '0' &&
           text[digits_end] <= '9') {
      ++digits_end;
    }
    if (digits_end == i) {
      return Status::ParseError("expected a number in duration '" +
                                std::string(text) + "'");
    }
    Duration amount = 0;
    for (size_t d = i; d < digits_end; ++d) {
      amount = amount * 10 + (text[d] - '0');
    }
    i = digits_end;
    size_t unit_end = i;
    while (unit_end < text.size() &&
           (text[unit_end] < '0' || text[unit_end] > '9')) {
      ++unit_end;
    }
    const std::string_view unit = text.substr(i, unit_end - i);
    i = unit_end;
    if (unit == "d") {
      total += amount * kDay;
    } else if (unit == "h") {
      total += amount * kHour;
    } else if (unit == "m") {
      total += amount * kMinute;
    } else if (unit == "s") {
      total += amount * kSecond;
    } else if (unit == "ms") {
      total += amount * kMillisecond;
    } else if (unit == "us") {
      total += amount * kMicrosecond;
    } else {
      return Status::ParseError("unknown duration unit '" +
                                std::string(unit) + "'");
    }
  }
  return total;
}

void VirtualClock::Advance(Duration d) {
  assert(d >= 0);
  now_ += d;
}

void VirtualClock::SetTime(Timestamp t) {
  assert(t >= now_);
  now_ = t;
}

SystemClock::SystemClock() {
  epoch_ = std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count();
}

Timestamp SystemClock::Now() const {
  Timestamp now = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  return now - epoch_;
}

}  // namespace fungusdb
