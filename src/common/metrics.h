#ifndef FUNGUSDB_COMMON_METRICS_H_
#define FUNGUSDB_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace fungusdb {

/// Fixed-boundary histogram for latency/size distributions. Records
/// int64 observations; reports count, sum, min, max, mean and quantiles
/// (approximated by linear interpolation within buckets).
class HistogramMetric {
 public:
  /// Buckets are exponential: [0,1), [1,2), [2,4), ... up to 2^62.
  HistogramMetric();

  void Record(int64_t value);

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  /// q in [0, 1]. Returns 0 on an empty histogram.
  double Quantile(double q) const;

  void Reset();

 private:
  static constexpr int kNumBuckets = 64;
  int64_t buckets_[kNumBuckets];
  int64_t count_;
  int64_t sum_;
  int64_t min_;
  int64_t max_;
};

/// Named counters, gauges and histograms owned by a Database (not global,
/// so parallel tests never share state). Thread-safe: counters, gauges
/// and histogram recording may be hit from pool workers during parallel
/// decay ticks and morsel scans; one mutex per registry is plenty at the
/// current update rates (hot loops accumulate locally and flush once).
class MetricsRegistry {
 public:
  void IncrementCounter(const std::string& name, int64_t delta = 1);
  int64_t GetCounter(const std::string& name) const;

  void SetGauge(const std::string& name, double value);
  double GetGauge(const std::string& name) const;

  /// Records one observation under the registry lock — the only safe way
  /// to feed a histogram from a pool worker.
  void RecordHistogram(const std::string& name, int64_t value);

  /// Coordinator-thread access to a histogram object. The reference
  /// stays valid for the registry's lifetime, but Record() through it is
  /// unsynchronized — concurrent writers must use RecordHistogram().
  HistogramMetric& Histogram(const std::string& name);
  const HistogramMetric* FindHistogram(const std::string& name) const;

  /// Multi-line "name = value" dump, sorted by name.
  std::string Report() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_COMMON_METRICS_H_
