#ifndef FUNGUSDB_COMMON_METRICS_H_
#define FUNGUSDB_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fungusdb {

/// Fixed-boundary histogram for latency/size distributions. Records
/// int64 observations; reports count, sum, min, max, mean and quantiles
/// (approximated by linear interpolation within buckets).
class HistogramMetric {
 public:
  /// Buckets are exponential: [0,1), [1,2), [2,4), ... up to 2^62.
  /// Negative observations land in the first bucket.
  HistogramMetric();

  void Record(int64_t value);

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  /// q outside [0, 1] is clamped. Returns 0 on an empty histogram,
  /// exactly min() at q == 0, exactly max() at q == 1, and the exact
  /// value when the histogram holds a single distinct sample.
  double Quantile(double q) const;

  /// Cumulative (le, count) pairs for Prometheus `_bucket` series, in
  /// ascending le order. Observations are integers, so each occupied
  /// bucket reports its exact inclusive upper bound: le=0 for the
  /// non-positive bucket, le = 2^i - 1 for bucket i in [1, 62]. Empty
  /// buckets are omitted; the overflow bucket [2^62, inf) only shows up
  /// in the implicit `le="+Inf"` series, which the exposition writer
  /// renders from count(). An empty histogram yields an empty vector.
  std::vector<std::pair<int64_t, int64_t>> CumulativeBuckets() const;

  void Reset();

 private:
  static constexpr int kNumBuckets = 64;
  int64_t buckets_[kNumBuckets];
  int64_t count_;
  int64_t sum_;
  int64_t min_;
  int64_t max_;
};

/// Named counters, gauges and histograms owned by a Database (not global,
/// so parallel tests never share state). Thread-safe: counters, gauges
/// and histogram recording may be hit from pool workers during parallel
/// decay ticks and morsel scans; one mutex per registry is plenty at the
/// current update rates (hot loops accumulate locally and flush once).
///
/// Every series carries an optional label — a single "key=value" string
/// ("table=events", "shard=3", "code=2002") — so one metric name fans
/// out into per-table / per-shard / per-error-code series. The empty
/// label is the plain, unlabeled series. Names follow the documented
/// convention `fungusdb.<subsystem>.<name>` (DESIGN.md §12), enforced
/// by the `metric-naming` lint rule.
class MetricsRegistry {
 public:
  void IncrementCounter(const std::string& name, int64_t delta = 1);
  void IncrementCounter(const std::string& name, const std::string& label,
                        int64_t delta = 1);
  int64_t GetCounter(const std::string& name) const;
  int64_t GetCounter(const std::string& name,
                     const std::string& label) const;

  void SetGauge(const std::string& name, double value);
  void SetGauge(const std::string& name, const std::string& label,
                double value);
  double GetGauge(const std::string& name) const;
  double GetGauge(const std::string& name, const std::string& label) const;

  /// Records one observation under the registry lock — the only safe way
  /// to feed a histogram from a pool worker.
  void RecordHistogram(const std::string& name, int64_t value);
  void RecordHistogram(const std::string& name, const std::string& label,
                       int64_t value);

  /// Coordinator-thread access to a histogram object. The reference
  /// stays valid for the registry's lifetime, but Record() through it is
  /// unsynchronized — concurrent writers must use RecordHistogram().
  HistogramMetric& Histogram(const std::string& name);
  const HistogramMetric* FindHistogram(const std::string& name) const;
  const HistogramMetric* FindHistogram(const std::string& name,
                                       const std::string& label) const;

  /// Multi-line "name = value" / "name{label} = value" dump, ordered
  /// deterministically: counters, then gauges, then histograms, each
  /// sorted by (name, label).
  std::string Report() const;

  /// Prometheus text exposition (version 0.0.4): `# TYPE` lines,
  /// sanitized metric names (dots become underscores), labeled series
  /// as name{key="value"}, histograms as real cumulative histograms —
  /// `_bucket{le="..."}` series (exact inclusive integer bounds, always
  /// closing with le="+Inf") plus `_sum` and `_count`. Deterministically
  /// ordered.
  std::string PrometheusReport() const;

  void Reset();

 private:
  /// Series keyed by name, then by label ("" == unlabeled).
  template <typename T>
  using SeriesMap = std::map<std::string, std::map<std::string, T>>;

  mutable Mutex mu_;
  SeriesMap<int64_t> counters_ FUNGUS_GUARDED_BY(mu_);
  SeriesMap<double> gauges_ FUNGUS_GUARDED_BY(mu_);
  SeriesMap<HistogramMetric> histograms_ FUNGUS_GUARDED_BY(mu_);
};

}  // namespace fungusdb

#endif  // FUNGUSDB_COMMON_METRICS_H_
