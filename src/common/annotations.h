#ifndef FUNGUSDB_COMMON_ANNOTATIONS_H_
#define FUNGUSDB_COMMON_ANNOTATIONS_H_

/// Source-level annotations checked by the project's static analysis
/// pass (tools/analyze/capability_audit.py). They expand to nothing at
/// compile time; their value is that the audit can read them and
/// enforce the calling contracts the type system cannot express. The
/// compile-time half of the concurrency contract lives in
/// common/thread_annotations.h (Clang Thread Safety Analysis).

/// Marks a method that mutates per-shard state without taking a lock.
/// Shards are lock-free by contract: during a parallel decay tick each
/// shard is mutated by exactly one worker (the apply phase), and all
/// other mutation happens on the coordinator thread between parallel
/// phases. capability_audit.py enforces that annotated methods are only
/// called from the files that implement those two phases
/// (storage/table.cc wrappers, fungus/scheduler.cc apply loop,
/// verify/corruptor.cc test seeding) — never from arbitrary code that
/// could race a tick. Clang TSA cannot express this (the capability is
/// "being the apply phase", not a lock the analysis can name across
/// objects), so the audit carries it.
#define FUNGUS_REQUIRES_APPLY_PHASE

#endif  // FUNGUSDB_COMMON_ANNOTATIONS_H_
