#ifndef FUNGUSDB_COMMON_ANNOTATIONS_H_
#define FUNGUSDB_COMMON_ANNOTATIONS_H_

/// Source-level annotations checked by the project lint pass
/// (tools/lint/fungus_lint.py). They expand to nothing at compile time;
/// their value is that the linter can read them and enforce the calling
/// contracts the type system cannot express.

/// Marks a method that mutates per-shard state without taking a lock.
/// Shards are lock-free by contract: during a parallel decay tick each
/// shard is mutated by exactly one worker (the apply phase), and all
/// other mutation happens on the coordinator thread between parallel
/// phases. The linter enforces that annotated methods are only called
/// from the files that implement those two phases (storage/table.cc
/// wrappers, fungus/scheduler.cc apply loop, verify/corruptor.cc test
/// seeding) — never from arbitrary code that could race a tick.
#define FUNGUS_REQUIRES_APPLY_PHASE

#endif  // FUNGUSDB_COMMON_ANNOTATIONS_H_
