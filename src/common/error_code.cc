#include "fungusdb/error_code.h"

namespace fungusdb {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "Ok";
    case ErrorCode::kInvalidArgument:
      return "InvalidArgument";
    case ErrorCode::kOutOfRange:
      return "OutOfRange";
    case ErrorCode::kFailedPrecondition:
      return "FailedPrecondition";
    case ErrorCode::kParseError:
      return "ParseError";
    case ErrorCode::kTypeMismatch:
      return "TypeMismatch";
    case ErrorCode::kNotFound:
      return "NotFound";
    case ErrorCode::kAlreadyExists:
      return "AlreadyExists";
    case ErrorCode::kTableNotFound:
      return "TableNotFound";
    case ErrorCode::kColumnNotFound:
      return "ColumnNotFound";
    case ErrorCode::kResourceExhausted:
      return "ResourceExhausted";
    case ErrorCode::kOverloaded:
      return "Overloaded";
    case ErrorCode::kTimeout:
      return "Timeout";
    case ErrorCode::kShuttingDown:
      return "ShuttingDown";
    case ErrorCode::kUnimplemented:
      return "Unimplemented";
    case ErrorCode::kInternal:
      return "Internal";
    case ErrorCode::kDataCorruption:
      return "DataCorruption";
    case ErrorCode::kWireFormat:
      return "WireFormat";
    case ErrorCode::kConnectionClosed:
      return "ConnectionClosed";
  }
  return "Unknown";
}

ErrorCode ErrorCodeFromWire(uint16_t raw) {
  const ErrorCode code = static_cast<ErrorCode>(raw);
  return ErrorCodeName(code) == "Unknown" ? ErrorCode::kInternal : code;
}

}  // namespace fungusdb
