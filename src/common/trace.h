#ifndef FUNGUSDB_COMMON_TRACE_H_
#define FUNGUSDB_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fungusdb {

/// One completed span. `name` must point at a string with static
/// storage duration (span sites pass literals), so events carry no
/// allocations and recording never touches the heap.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_us = 0;  // microseconds since the tracer epoch
  uint64_t dur_us = 0;
  uint64_t arg = 0;  // site-defined detail (shard no, segment count, ...)
  uint32_t tid = 0;  // tracer-assigned small thread id (1-based)
  bool has_arg = false;
};

/// Low-overhead span tracer behind FUNGUS_TRACE_SPAN.
///
/// Design: one fixed-capacity ring buffer per recording thread,
/// registered lazily on first span and owned by the tracer for the
/// process lifetime (events survive thread exit). Recording is
/// lock-free — the owning thread writes slots with relaxed atomic
/// stores and publishes with a release store of the head counter; no
/// recording path ever takes a lock or allocates. A snapshot reader
/// acquires the head and walks the last `kEventsPerThread` slots; an
/// event overwritten mid-read can mix fields from two spans, which is
/// acceptable for a diagnostic trace and, because every field is
/// individually atomic, never a data race.
///
/// When tracing is disabled a span site costs one relaxed atomic load
/// (single-digit nanoseconds); bench_t8_trace_overhead measures it.
/// Defining FUNGUSDB_TRACE_COMPILED_OUT compiles span sites out
/// entirely (the -DFUNGUSDB_TRACE=OFF build).
class Tracer {
 public:
  static constexpr size_t kEventsPerThread = 16384;

  /// The process-wide tracer used by FUNGUS_TRACE_SPAN.
  static Tracer& Global();

  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }
  void Enable() { enabled_flag_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_flag_.store(false, std::memory_order_relaxed); }

  /// Microseconds since the tracer epoch (steady clock; the epoch is
  /// captured on first use so timestamps start near zero).
  static uint64_t NowMicros();

  /// Records one completed span on the calling thread's ring.
  void Record(const char* name, uint64_t start_us, uint64_t dur_us,
              uint64_t arg, bool has_arg);

  /// Drops every recorded event (rings stay registered).
  void Clear();

  /// Merged copy of every thread's surviving events, in start order.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace-event JSON (the Perfetto / catapult trace2html
  /// schema: name/cat/ph/ts/dur/pid/tid per event, ph "X" complete
  /// events, ts and dur in microseconds). Single line, newline
  /// terminated, loadable at https://ui.perfetto.dev.
  std::string ExportChromeJson() const;

  /// Events recorded since the last Clear(), including ones already
  /// overwritten in their ring.
  uint64_t events_recorded() const;

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> start_us{0};
    std::atomic<uint64_t> dur_us{0};
    std::atomic<uint64_t> arg{0};
    std::atomic<uint8_t> has_arg{0};
  };

  struct ThreadBuffer {
    explicit ThreadBuffer(uint32_t tid_in) : tid(tid_in) {}
    std::vector<Slot> slots{kEventsPerThread};
    /// Total events ever written by the owning thread; slot index is
    /// head % kEventsPerThread. Store-release publishes the slot.
    std::atomic<uint64_t> head{0};
    const uint32_t tid;
  };

  Tracer() = default;

  /// The calling thread's ring, registering it on first use.
  ThreadBuffer& BufferForThisThread();

  static std::atomic<bool> enabled_flag_;

  mutable Mutex mu_;  // guards buffers_ registration and snapshots
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ FUNGUS_GUARDED_BY(mu_);
};

/// RAII span: captures the start time at construction when tracing is
/// enabled, records on destruction. A span started while enabled still
/// records if tracing is turned off mid-span (one stale event beats a
/// branch in every destructor).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::enabled()) {
      name_ = name;
      start_us_ = Tracer::NowMicros();
    }
  }
  TraceSpan(const char* name, uint64_t arg) : TraceSpan(name) {
    arg_ = arg;
    has_arg_ = true;
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer::Global().Record(name_, start_us_,
                              Tracer::NowMicros() - start_us_, arg_,
                              has_arg_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
  uint64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace fungusdb

#define FUNGUS_TRACE_CONCAT_INNER_(a, b) a##b
#define FUNGUS_TRACE_CONCAT_(a, b) FUNGUS_TRACE_CONCAT_INNER_(a, b)

#if defined(FUNGUSDB_TRACE_COMPILED_OUT)
#define FUNGUS_TRACE_SPAN(...) \
  do {                         \
  } while (false)
#else
/// FUNGUS_TRACE_SPAN("decay.tick") or FUNGUS_TRACE_SPAN("scan.morsel",
/// morsel_index): an anonymous RAII span covering the enclosing scope.
#define FUNGUS_TRACE_SPAN(...)                                      \
  ::fungusdb::TraceSpan FUNGUS_TRACE_CONCAT_(fungus_trace_span_at_, \
                                             __LINE__)(__VA_ARGS__)
#endif

#endif  // FUNGUSDB_COMMON_TRACE_H_
