file(REMOVE_RECURSE
  "CMakeFiles/decay_policies.dir/decay_policies.cpp.o"
  "CMakeFiles/decay_policies.dir/decay_policies.cpp.o.d"
  "decay_policies"
  "decay_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decay_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
