# Empty dependencies file for decay_policies.
# This may be replaced when dependencies are built.
