# Empty compiler generated dependencies file for blue_cheese.
# This may be replaced when dependencies are built.
