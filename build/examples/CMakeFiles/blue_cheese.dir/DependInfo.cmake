
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/blue_cheese.cpp" "examples/CMakeFiles/blue_cheese.dir/blue_cheese.cpp.o" "gcc" "examples/CMakeFiles/blue_cheese.dir/blue_cheese.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fungus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fungus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fungus/CMakeFiles/fungus_decay.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/fungus_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/summary/CMakeFiles/fungus_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fungus_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fungus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fungus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
