file(REMOVE_RECURSE
  "CMakeFiles/blue_cheese.dir/blue_cheese.cpp.o"
  "CMakeFiles/blue_cheese.dir/blue_cheese.cpp.o.d"
  "blue_cheese"
  "blue_cheese.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blue_cheese.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
