# Empty dependencies file for clickstream_sessions.
# This may be replaced when dependencies are built.
