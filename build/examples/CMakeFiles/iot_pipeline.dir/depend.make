# Empty dependencies file for iot_pipeline.
# This may be replaced when dependencies are built.
