# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(fungusql_smoke "sh" "-c" "printf '\\\\create t (a int64, b string)\\n\\\\attach retention t 1h 1d\\nSELECT count(*) AS n FROM t\\n\\\\analyze t\\n\\\\health\\n\\\\quit\\n' | /root/repo/build/tools/fungusql")
set_tests_properties(fungusql_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "attached retention" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
