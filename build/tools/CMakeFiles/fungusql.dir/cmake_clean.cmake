file(REMOVE_RECURSE
  "CMakeFiles/fungusql.dir/fungusql.cc.o"
  "CMakeFiles/fungusql.dir/fungusql.cc.o.d"
  "fungusql"
  "fungusql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungusql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
