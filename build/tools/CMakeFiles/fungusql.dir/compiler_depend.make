# Empty compiler generated dependencies file for fungusql.
# This may be replaced when dependencies are built.
