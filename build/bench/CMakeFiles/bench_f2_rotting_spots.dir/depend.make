# Empty dependencies file for bench_f2_rotting_spots.
# This may be replaced when dependencies are built.
