file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_rotting_spots.dir/bench_f2_rotting_spots.cc.o"
  "CMakeFiles/bench_f2_rotting_spots.dir/bench_f2_rotting_spots.cc.o.d"
  "bench_f2_rotting_spots"
  "bench_f2_rotting_spots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_rotting_spots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
