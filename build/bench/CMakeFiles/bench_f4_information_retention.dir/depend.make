# Empty dependencies file for bench_f4_information_retention.
# This may be replaced when dependencies are built.
