file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_information_retention.dir/bench_f4_information_retention.cc.o"
  "CMakeFiles/bench_f4_information_retention.dir/bench_f4_information_retention.cc.o.d"
  "bench_f4_information_retention"
  "bench_f4_information_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_information_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
