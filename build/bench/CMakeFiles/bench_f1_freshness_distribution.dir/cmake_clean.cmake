file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_freshness_distribution.dir/bench_f1_freshness_distribution.cc.o"
  "CMakeFiles/bench_f1_freshness_distribution.dir/bench_f1_freshness_distribution.cc.o.d"
  "bench_f1_freshness_distribution"
  "bench_f1_freshness_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_freshness_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
