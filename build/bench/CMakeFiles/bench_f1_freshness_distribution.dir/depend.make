# Empty dependencies file for bench_f1_freshness_distribution.
# This may be replaced when dependencies are built.
