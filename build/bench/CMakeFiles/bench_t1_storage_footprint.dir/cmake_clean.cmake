file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_storage_footprint.dir/bench_t1_storage_footprint.cc.o"
  "CMakeFiles/bench_t1_storage_footprint.dir/bench_t1_storage_footprint.cc.o.d"
  "bench_t1_storage_footprint"
  "bench_t1_storage_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_storage_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
