# Empty dependencies file for bench_t1_storage_footprint.
# This may be replaced when dependencies are built.
