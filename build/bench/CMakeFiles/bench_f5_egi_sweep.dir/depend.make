# Empty dependencies file for bench_f5_egi_sweep.
# This may be replaced when dependencies are built.
