# Empty dependencies file for bench_t2_query_latency.
# This may be replaced when dependencies are built.
