file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_ingest_overhead.dir/bench_t4_ingest_overhead.cc.o"
  "CMakeFiles/bench_t4_ingest_overhead.dir/bench_t4_ingest_overhead.cc.o.d"
  "bench_t4_ingest_overhead"
  "bench_t4_ingest_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_ingest_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
