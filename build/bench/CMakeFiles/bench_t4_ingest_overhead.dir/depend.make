# Empty dependencies file for bench_t4_ingest_overhead.
# This may be replaced when dependencies are built.
