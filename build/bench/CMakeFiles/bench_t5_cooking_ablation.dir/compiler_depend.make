# Empty compiler generated dependencies file for bench_t5_cooking_ablation.
# This may be replaced when dependencies are built.
