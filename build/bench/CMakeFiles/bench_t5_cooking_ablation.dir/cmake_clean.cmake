file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_cooking_ablation.dir/bench_t5_cooking_ablation.cc.o"
  "CMakeFiles/bench_t5_cooking_ablation.dir/bench_t5_cooking_ablation.cc.o.d"
  "bench_t5_cooking_ablation"
  "bench_t5_cooking_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_cooking_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
