file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_summary_accuracy.dir/bench_f3_summary_accuracy.cc.o"
  "CMakeFiles/bench_f3_summary_accuracy.dir/bench_f3_summary_accuracy.cc.o.d"
  "bench_f3_summary_accuracy"
  "bench_f3_summary_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_summary_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
