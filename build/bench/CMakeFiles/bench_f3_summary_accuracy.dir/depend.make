# Empty dependencies file for bench_f3_summary_accuracy.
# This may be replaced when dependencies are built.
