# Empty compiler generated dependencies file for bench_t3_consuming_queries.
# This may be replaced when dependencies are built.
