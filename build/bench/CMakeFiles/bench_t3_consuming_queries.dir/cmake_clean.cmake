file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_consuming_queries.dir/bench_t3_consuming_queries.cc.o"
  "CMakeFiles/bench_t3_consuming_queries.dir/bench_t3_consuming_queries.cc.o.d"
  "bench_t3_consuming_queries"
  "bench_t3_consuming_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_consuming_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
