file(REMOVE_RECURSE
  "libfungus_summary.a"
)
