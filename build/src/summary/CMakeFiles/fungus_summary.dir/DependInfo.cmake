
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/summary/bloom_filter.cc" "src/summary/CMakeFiles/fungus_summary.dir/bloom_filter.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/bloom_filter.cc.o.d"
  "/root/repo/src/summary/cellar.cc" "src/summary/CMakeFiles/fungus_summary.dir/cellar.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/cellar.cc.o.d"
  "/root/repo/src/summary/count_min_sketch.cc" "src/summary/CMakeFiles/fungus_summary.dir/count_min_sketch.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/count_min_sketch.cc.o.d"
  "/root/repo/src/summary/grouped_aggregate.cc" "src/summary/CMakeFiles/fungus_summary.dir/grouped_aggregate.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/grouped_aggregate.cc.o.d"
  "/root/repo/src/summary/hashing.cc" "src/summary/CMakeFiles/fungus_summary.dir/hashing.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/hashing.cc.o.d"
  "/root/repo/src/summary/histogram_sketch.cc" "src/summary/CMakeFiles/fungus_summary.dir/histogram_sketch.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/histogram_sketch.cc.o.d"
  "/root/repo/src/summary/hyperloglog.cc" "src/summary/CMakeFiles/fungus_summary.dir/hyperloglog.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/hyperloglog.cc.o.d"
  "/root/repo/src/summary/p2_quantile.cc" "src/summary/CMakeFiles/fungus_summary.dir/p2_quantile.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/p2_quantile.cc.o.d"
  "/root/repo/src/summary/reservoir_sample.cc" "src/summary/CMakeFiles/fungus_summary.dir/reservoir_sample.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/reservoir_sample.cc.o.d"
  "/root/repo/src/summary/serialize.cc" "src/summary/CMakeFiles/fungus_summary.dir/serialize.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/serialize.cc.o.d"
  "/root/repo/src/summary/table_stats.cc" "src/summary/CMakeFiles/fungus_summary.dir/table_stats.cc.o" "gcc" "src/summary/CMakeFiles/fungus_summary.dir/table_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/fungus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fungus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
