file(REMOVE_RECURSE
  "CMakeFiles/fungus_summary.dir/bloom_filter.cc.o"
  "CMakeFiles/fungus_summary.dir/bloom_filter.cc.o.d"
  "CMakeFiles/fungus_summary.dir/cellar.cc.o"
  "CMakeFiles/fungus_summary.dir/cellar.cc.o.d"
  "CMakeFiles/fungus_summary.dir/count_min_sketch.cc.o"
  "CMakeFiles/fungus_summary.dir/count_min_sketch.cc.o.d"
  "CMakeFiles/fungus_summary.dir/grouped_aggregate.cc.o"
  "CMakeFiles/fungus_summary.dir/grouped_aggregate.cc.o.d"
  "CMakeFiles/fungus_summary.dir/hashing.cc.o"
  "CMakeFiles/fungus_summary.dir/hashing.cc.o.d"
  "CMakeFiles/fungus_summary.dir/histogram_sketch.cc.o"
  "CMakeFiles/fungus_summary.dir/histogram_sketch.cc.o.d"
  "CMakeFiles/fungus_summary.dir/hyperloglog.cc.o"
  "CMakeFiles/fungus_summary.dir/hyperloglog.cc.o.d"
  "CMakeFiles/fungus_summary.dir/p2_quantile.cc.o"
  "CMakeFiles/fungus_summary.dir/p2_quantile.cc.o.d"
  "CMakeFiles/fungus_summary.dir/reservoir_sample.cc.o"
  "CMakeFiles/fungus_summary.dir/reservoir_sample.cc.o.d"
  "CMakeFiles/fungus_summary.dir/serialize.cc.o"
  "CMakeFiles/fungus_summary.dir/serialize.cc.o.d"
  "CMakeFiles/fungus_summary.dir/table_stats.cc.o"
  "CMakeFiles/fungus_summary.dir/table_stats.cc.o.d"
  "libfungus_summary.a"
  "libfungus_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungus_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
