# Empty compiler generated dependencies file for fungus_summary.
# This may be replaced when dependencies are built.
