file(REMOVE_RECURSE
  "CMakeFiles/fungus_pipeline.dir/csv.cc.o"
  "CMakeFiles/fungus_pipeline.dir/csv.cc.o.d"
  "CMakeFiles/fungus_pipeline.dir/ingestor.cc.o"
  "CMakeFiles/fungus_pipeline.dir/ingestor.cc.o.d"
  "CMakeFiles/fungus_pipeline.dir/kitchen.cc.o"
  "CMakeFiles/fungus_pipeline.dir/kitchen.cc.o.d"
  "libfungus_pipeline.a"
  "libfungus_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungus_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
