file(REMOVE_RECURSE
  "libfungus_pipeline.a"
)
