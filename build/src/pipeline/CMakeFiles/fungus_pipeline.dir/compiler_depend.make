# Empty compiler generated dependencies file for fungus_pipeline.
# This may be replaced when dependencies are built.
