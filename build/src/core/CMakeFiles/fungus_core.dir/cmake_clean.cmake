file(REMOVE_RECURSE
  "CMakeFiles/fungus_core.dir/database.cc.o"
  "CMakeFiles/fungus_core.dir/database.cc.o.d"
  "libfungus_core.a"
  "libfungus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
