file(REMOVE_RECURSE
  "libfungus_core.a"
)
