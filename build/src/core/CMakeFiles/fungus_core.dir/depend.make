# Empty dependencies file for fungus_core.
# This may be replaced when dependencies are built.
