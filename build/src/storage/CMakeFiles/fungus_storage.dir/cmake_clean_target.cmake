file(REMOVE_RECURSE
  "libfungus_storage.a"
)
