# Empty compiler generated dependencies file for fungus_storage.
# This may be replaced when dependencies are built.
