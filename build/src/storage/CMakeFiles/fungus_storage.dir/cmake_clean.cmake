file(REMOVE_RECURSE
  "CMakeFiles/fungus_storage.dir/column.cc.o"
  "CMakeFiles/fungus_storage.dir/column.cc.o.d"
  "CMakeFiles/fungus_storage.dir/datatype.cc.o"
  "CMakeFiles/fungus_storage.dir/datatype.cc.o.d"
  "CMakeFiles/fungus_storage.dir/schema.cc.o"
  "CMakeFiles/fungus_storage.dir/schema.cc.o.d"
  "CMakeFiles/fungus_storage.dir/segment.cc.o"
  "CMakeFiles/fungus_storage.dir/segment.cc.o.d"
  "CMakeFiles/fungus_storage.dir/table.cc.o"
  "CMakeFiles/fungus_storage.dir/table.cc.o.d"
  "CMakeFiles/fungus_storage.dir/value.cc.o"
  "CMakeFiles/fungus_storage.dir/value.cc.o.d"
  "CMakeFiles/fungus_storage.dir/value_serde.cc.o"
  "CMakeFiles/fungus_storage.dir/value_serde.cc.o.d"
  "libfungus_storage.a"
  "libfungus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
