file(REMOVE_RECURSE
  "CMakeFiles/fungus_common.dir/buffer_io.cc.o"
  "CMakeFiles/fungus_common.dir/buffer_io.cc.o.d"
  "CMakeFiles/fungus_common.dir/clock.cc.o"
  "CMakeFiles/fungus_common.dir/clock.cc.o.d"
  "CMakeFiles/fungus_common.dir/logging.cc.o"
  "CMakeFiles/fungus_common.dir/logging.cc.o.d"
  "CMakeFiles/fungus_common.dir/metrics.cc.o"
  "CMakeFiles/fungus_common.dir/metrics.cc.o.d"
  "CMakeFiles/fungus_common.dir/random.cc.o"
  "CMakeFiles/fungus_common.dir/random.cc.o.d"
  "CMakeFiles/fungus_common.dir/status.cc.o"
  "CMakeFiles/fungus_common.dir/status.cc.o.d"
  "CMakeFiles/fungus_common.dir/string_util.cc.o"
  "CMakeFiles/fungus_common.dir/string_util.cc.o.d"
  "libfungus_common.a"
  "libfungus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
