file(REMOVE_RECURSE
  "libfungus_common.a"
)
