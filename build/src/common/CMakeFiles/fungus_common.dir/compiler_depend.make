# Empty compiler generated dependencies file for fungus_common.
# This may be replaced when dependencies are built.
