# CMake generated Testfile for 
# Source directory: /root/repo/src/fungus
# Build directory: /root/repo/build/src/fungus
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
