# Empty dependencies file for fungus_decay.
# This may be replaced when dependencies are built.
