file(REMOVE_RECURSE
  "CMakeFiles/fungus_decay.dir/composite_fungus.cc.o"
  "CMakeFiles/fungus_decay.dir/composite_fungus.cc.o.d"
  "CMakeFiles/fungus_decay.dir/egi_fungus.cc.o"
  "CMakeFiles/fungus_decay.dir/egi_fungus.cc.o.d"
  "CMakeFiles/fungus_decay.dir/exponential_fungus.cc.o"
  "CMakeFiles/fungus_decay.dir/exponential_fungus.cc.o.d"
  "CMakeFiles/fungus_decay.dir/fungus.cc.o"
  "CMakeFiles/fungus_decay.dir/fungus.cc.o.d"
  "CMakeFiles/fungus_decay.dir/importance_fungus.cc.o"
  "CMakeFiles/fungus_decay.dir/importance_fungus.cc.o.d"
  "CMakeFiles/fungus_decay.dir/quota_fungus.cc.o"
  "CMakeFiles/fungus_decay.dir/quota_fungus.cc.o.d"
  "CMakeFiles/fungus_decay.dir/random_blight_fungus.cc.o"
  "CMakeFiles/fungus_decay.dir/random_blight_fungus.cc.o.d"
  "CMakeFiles/fungus_decay.dir/retention_fungus.cc.o"
  "CMakeFiles/fungus_decay.dir/retention_fungus.cc.o.d"
  "CMakeFiles/fungus_decay.dir/rot_analysis.cc.o"
  "CMakeFiles/fungus_decay.dir/rot_analysis.cc.o.d"
  "CMakeFiles/fungus_decay.dir/scheduler.cc.o"
  "CMakeFiles/fungus_decay.dir/scheduler.cc.o.d"
  "CMakeFiles/fungus_decay.dir/semantic_fungus.cc.o"
  "CMakeFiles/fungus_decay.dir/semantic_fungus.cc.o.d"
  "CMakeFiles/fungus_decay.dir/sliding_window_fungus.cc.o"
  "CMakeFiles/fungus_decay.dir/sliding_window_fungus.cc.o.d"
  "libfungus_decay.a"
  "libfungus_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungus_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
