file(REMOVE_RECURSE
  "libfungus_decay.a"
)
