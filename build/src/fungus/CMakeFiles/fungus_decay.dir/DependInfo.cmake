
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fungus/composite_fungus.cc" "src/fungus/CMakeFiles/fungus_decay.dir/composite_fungus.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/composite_fungus.cc.o.d"
  "/root/repo/src/fungus/egi_fungus.cc" "src/fungus/CMakeFiles/fungus_decay.dir/egi_fungus.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/egi_fungus.cc.o.d"
  "/root/repo/src/fungus/exponential_fungus.cc" "src/fungus/CMakeFiles/fungus_decay.dir/exponential_fungus.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/exponential_fungus.cc.o.d"
  "/root/repo/src/fungus/fungus.cc" "src/fungus/CMakeFiles/fungus_decay.dir/fungus.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/fungus.cc.o.d"
  "/root/repo/src/fungus/importance_fungus.cc" "src/fungus/CMakeFiles/fungus_decay.dir/importance_fungus.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/importance_fungus.cc.o.d"
  "/root/repo/src/fungus/quota_fungus.cc" "src/fungus/CMakeFiles/fungus_decay.dir/quota_fungus.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/quota_fungus.cc.o.d"
  "/root/repo/src/fungus/random_blight_fungus.cc" "src/fungus/CMakeFiles/fungus_decay.dir/random_blight_fungus.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/random_blight_fungus.cc.o.d"
  "/root/repo/src/fungus/retention_fungus.cc" "src/fungus/CMakeFiles/fungus_decay.dir/retention_fungus.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/retention_fungus.cc.o.d"
  "/root/repo/src/fungus/rot_analysis.cc" "src/fungus/CMakeFiles/fungus_decay.dir/rot_analysis.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/rot_analysis.cc.o.d"
  "/root/repo/src/fungus/scheduler.cc" "src/fungus/CMakeFiles/fungus_decay.dir/scheduler.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/scheduler.cc.o.d"
  "/root/repo/src/fungus/semantic_fungus.cc" "src/fungus/CMakeFiles/fungus_decay.dir/semantic_fungus.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/semantic_fungus.cc.o.d"
  "/root/repo/src/fungus/sliding_window_fungus.cc" "src/fungus/CMakeFiles/fungus_decay.dir/sliding_window_fungus.cc.o" "gcc" "src/fungus/CMakeFiles/fungus_decay.dir/sliding_window_fungus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/fungus_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fungus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fungus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
