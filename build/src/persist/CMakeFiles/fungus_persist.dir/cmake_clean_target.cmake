file(REMOVE_RECURSE
  "libfungus_persist.a"
)
