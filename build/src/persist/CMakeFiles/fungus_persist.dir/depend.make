# Empty dependencies file for fungus_persist.
# This may be replaced when dependencies are built.
