file(REMOVE_RECURSE
  "CMakeFiles/fungus_persist.dir/journal.cc.o"
  "CMakeFiles/fungus_persist.dir/journal.cc.o.d"
  "CMakeFiles/fungus_persist.dir/snapshot.cc.o"
  "CMakeFiles/fungus_persist.dir/snapshot.cc.o.d"
  "libfungus_persist.a"
  "libfungus_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungus_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
