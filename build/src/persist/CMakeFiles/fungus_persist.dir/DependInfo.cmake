
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/persist/journal.cc" "src/persist/CMakeFiles/fungus_persist.dir/journal.cc.o" "gcc" "src/persist/CMakeFiles/fungus_persist.dir/journal.cc.o.d"
  "/root/repo/src/persist/snapshot.cc" "src/persist/CMakeFiles/fungus_persist.dir/snapshot.cc.o" "gcc" "src/persist/CMakeFiles/fungus_persist.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fungus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fungus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fungus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fungus/CMakeFiles/fungus_decay.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/fungus_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fungus_query.dir/DependInfo.cmake"
  "/root/repo/build/src/summary/CMakeFiles/fungus_summary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
