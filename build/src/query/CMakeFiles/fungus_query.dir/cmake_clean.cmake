file(REMOVE_RECURSE
  "CMakeFiles/fungus_query.dir/binder.cc.o"
  "CMakeFiles/fungus_query.dir/binder.cc.o.d"
  "CMakeFiles/fungus_query.dir/engine.cc.o"
  "CMakeFiles/fungus_query.dir/engine.cc.o.d"
  "CMakeFiles/fungus_query.dir/evaluator.cc.o"
  "CMakeFiles/fungus_query.dir/evaluator.cc.o.d"
  "CMakeFiles/fungus_query.dir/expr.cc.o"
  "CMakeFiles/fungus_query.dir/expr.cc.o.d"
  "CMakeFiles/fungus_query.dir/lexer.cc.o"
  "CMakeFiles/fungus_query.dir/lexer.cc.o.d"
  "CMakeFiles/fungus_query.dir/parser.cc.o"
  "CMakeFiles/fungus_query.dir/parser.cc.o.d"
  "CMakeFiles/fungus_query.dir/query.cc.o"
  "CMakeFiles/fungus_query.dir/query.cc.o.d"
  "CMakeFiles/fungus_query.dir/result_set.cc.o"
  "CMakeFiles/fungus_query.dir/result_set.cc.o.d"
  "libfungus_query.a"
  "libfungus_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungus_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
