# Empty compiler generated dependencies file for fungus_query.
# This may be replaced when dependencies are built.
