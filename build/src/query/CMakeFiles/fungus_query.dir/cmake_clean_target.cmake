file(REMOVE_RECURSE
  "libfungus_query.a"
)
