file(REMOVE_RECURSE
  "CMakeFiles/fungus_workload.dir/clickstream_workload.cc.o"
  "CMakeFiles/fungus_workload.dir/clickstream_workload.cc.o.d"
  "CMakeFiles/fungus_workload.dir/iot_workload.cc.o"
  "CMakeFiles/fungus_workload.dir/iot_workload.cc.o.d"
  "CMakeFiles/fungus_workload.dir/query_workload.cc.o"
  "CMakeFiles/fungus_workload.dir/query_workload.cc.o.d"
  "CMakeFiles/fungus_workload.dir/tick_workload.cc.o"
  "CMakeFiles/fungus_workload.dir/tick_workload.cc.o.d"
  "libfungus_workload.a"
  "libfungus_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungus_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
