# Empty compiler generated dependencies file for fungus_workload.
# This may be replaced when dependencies are built.
