file(REMOVE_RECURSE
  "libfungus_workload.a"
)
