# Empty compiler generated dependencies file for query_tests.
# This may be replaced when dependencies are built.
