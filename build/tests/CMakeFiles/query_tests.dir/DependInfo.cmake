
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/query/binder_test.cc" "tests/CMakeFiles/query_tests.dir/query/binder_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/binder_test.cc.o.d"
  "/root/repo/tests/query/consuming_test.cc" "tests/CMakeFiles/query_tests.dir/query/consuming_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/consuming_test.cc.o.d"
  "/root/repo/tests/query/engine_edge_test.cc" "tests/CMakeFiles/query_tests.dir/query/engine_edge_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/engine_edge_test.cc.o.d"
  "/root/repo/tests/query/engine_test.cc" "tests/CMakeFiles/query_tests.dir/query/engine_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/engine_test.cc.o.d"
  "/root/repo/tests/query/evaluator_test.cc" "tests/CMakeFiles/query_tests.dir/query/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/evaluator_test.cc.o.d"
  "/root/repo/tests/query/fast_path_test.cc" "tests/CMakeFiles/query_tests.dir/query/fast_path_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/fast_path_test.cc.o.d"
  "/root/repo/tests/query/freshness_aggregate_test.cc" "tests/CMakeFiles/query_tests.dir/query/freshness_aggregate_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/freshness_aggregate_test.cc.o.d"
  "/root/repo/tests/query/lexer_test.cc" "tests/CMakeFiles/query_tests.dir/query/lexer_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/lexer_test.cc.o.d"
  "/root/repo/tests/query/parser_fuzz_test.cc" "tests/CMakeFiles/query_tests.dir/query/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/query/parser_test.cc" "tests/CMakeFiles/query_tests.dir/query/parser_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/parser_test.cc.o.d"
  "/root/repo/tests/query/scalar_function_test.cc" "tests/CMakeFiles/query_tests.dir/query/scalar_function_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/query/scalar_function_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fungus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fungus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fungus/CMakeFiles/fungus_decay.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/fungus_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/summary/CMakeFiles/fungus_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fungus_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fungus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fungus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
