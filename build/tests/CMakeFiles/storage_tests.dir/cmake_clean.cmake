file(REMOVE_RECURSE
  "CMakeFiles/storage_tests.dir/storage/column_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/column_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/schema_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/schema_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/segment_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/segment_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/table_model_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/table_model_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/table_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/table_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/value_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/value_test.cc.o.d"
  "storage_tests"
  "storage_tests.pdb"
  "storage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
