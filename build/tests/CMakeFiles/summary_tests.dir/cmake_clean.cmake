file(REMOVE_RECURSE
  "CMakeFiles/summary_tests.dir/summary/bloom_filter_test.cc.o"
  "CMakeFiles/summary_tests.dir/summary/bloom_filter_test.cc.o.d"
  "CMakeFiles/summary_tests.dir/summary/cellar_test.cc.o"
  "CMakeFiles/summary_tests.dir/summary/cellar_test.cc.o.d"
  "CMakeFiles/summary_tests.dir/summary/count_min_sketch_test.cc.o"
  "CMakeFiles/summary_tests.dir/summary/count_min_sketch_test.cc.o.d"
  "CMakeFiles/summary_tests.dir/summary/grouped_aggregate_test.cc.o"
  "CMakeFiles/summary_tests.dir/summary/grouped_aggregate_test.cc.o.d"
  "CMakeFiles/summary_tests.dir/summary/hashing_test.cc.o"
  "CMakeFiles/summary_tests.dir/summary/hashing_test.cc.o.d"
  "CMakeFiles/summary_tests.dir/summary/histogram_sketch_test.cc.o"
  "CMakeFiles/summary_tests.dir/summary/histogram_sketch_test.cc.o.d"
  "CMakeFiles/summary_tests.dir/summary/hyperloglog_test.cc.o"
  "CMakeFiles/summary_tests.dir/summary/hyperloglog_test.cc.o.d"
  "CMakeFiles/summary_tests.dir/summary/p2_quantile_test.cc.o"
  "CMakeFiles/summary_tests.dir/summary/p2_quantile_test.cc.o.d"
  "CMakeFiles/summary_tests.dir/summary/reservoir_sample_test.cc.o"
  "CMakeFiles/summary_tests.dir/summary/reservoir_sample_test.cc.o.d"
  "CMakeFiles/summary_tests.dir/summary/table_stats_test.cc.o"
  "CMakeFiles/summary_tests.dir/summary/table_stats_test.cc.o.d"
  "summary_tests"
  "summary_tests.pdb"
  "summary_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
