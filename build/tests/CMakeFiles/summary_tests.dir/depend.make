# Empty dependencies file for summary_tests.
# This may be replaced when dependencies are built.
