# Empty compiler generated dependencies file for fungus_tests.
# This may be replaced when dependencies are built.
