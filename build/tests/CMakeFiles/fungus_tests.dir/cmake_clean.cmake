file(REMOVE_RECURSE
  "CMakeFiles/fungus_tests.dir/fungus/egi_fungus_test.cc.o"
  "CMakeFiles/fungus_tests.dir/fungus/egi_fungus_test.cc.o.d"
  "CMakeFiles/fungus_tests.dir/fungus/exponential_fungus_test.cc.o"
  "CMakeFiles/fungus_tests.dir/fungus/exponential_fungus_test.cc.o.d"
  "CMakeFiles/fungus_tests.dir/fungus/fungus_property_test.cc.o"
  "CMakeFiles/fungus_tests.dir/fungus/fungus_property_test.cc.o.d"
  "CMakeFiles/fungus_tests.dir/fungus/misc_fungus_test.cc.o"
  "CMakeFiles/fungus_tests.dir/fungus/misc_fungus_test.cc.o.d"
  "CMakeFiles/fungus_tests.dir/fungus/retention_fungus_test.cc.o"
  "CMakeFiles/fungus_tests.dir/fungus/retention_fungus_test.cc.o.d"
  "CMakeFiles/fungus_tests.dir/fungus/rot_analysis_test.cc.o"
  "CMakeFiles/fungus_tests.dir/fungus/rot_analysis_test.cc.o.d"
  "CMakeFiles/fungus_tests.dir/fungus/scheduler_test.cc.o"
  "CMakeFiles/fungus_tests.dir/fungus/scheduler_test.cc.o.d"
  "CMakeFiles/fungus_tests.dir/fungus/semantic_quota_fungus_test.cc.o"
  "CMakeFiles/fungus_tests.dir/fungus/semantic_quota_fungus_test.cc.o.d"
  "fungus_tests"
  "fungus_tests.pdb"
  "fungus_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fungus_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
