file(REMOVE_RECURSE
  "CMakeFiles/persist_tests.dir/persist/journal_test.cc.o"
  "CMakeFiles/persist_tests.dir/persist/journal_test.cc.o.d"
  "CMakeFiles/persist_tests.dir/persist/snapshot_test.cc.o"
  "CMakeFiles/persist_tests.dir/persist/snapshot_test.cc.o.d"
  "persist_tests"
  "persist_tests.pdb"
  "persist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
