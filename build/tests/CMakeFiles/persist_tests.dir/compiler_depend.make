# Empty compiler generated dependencies file for persist_tests.
# This may be replaced when dependencies are built.
