# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/storage_tests[1]_include.cmake")
include("/root/repo/build/tests/fungus_tests[1]_include.cmake")
include("/root/repo/build/tests/summary_tests[1]_include.cmake")
include("/root/repo/build/tests/query_tests[1]_include.cmake")
include("/root/repo/build/tests/pipeline_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/persist_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
