#!/usr/bin/env python3
"""Tiny Prometheus text-exposition (0.0.4) scrape validator.

Validates the output of MetricsRegistry::PrometheusReport() — and any
live GET /metrics scrape — without third-party dependencies:

  * every non-comment line parses as `name{labels} value` with legal
    metric/label names and properly escaped label values;
  * every sample's metric (its base name, for histogram `_bucket` /
    `_sum` / `_count` suffixes) carries a preceding `# TYPE`;
  * histograms are real cumulative histograms: per label set, bucket
    counts are non-decreasing as `le` grows, a `le="+Inf"` bucket is
    present, it equals the `_count` sample, and a `_sum` sample exists;
  * counters are non-negative.

Usage: prom_validator.py [FILE] [--require-bucket] [--require NAME]...
       (reads stdin when FILE is absent or `-`)

  --require-bucket   fail unless at least one histogram exports a
                     finite-bound _bucket sample (the PR 10 acceptance
                     bar: summaries quantile output does not count)
  --require NAME     fail unless a sample of metric NAME exists
                     (repeatable)

Exits 0 when valid, 1 with one message per problem. Registered against
golden/bad fixtures by the prom_validator_* ctests and used live by the
fungusd obs smoke test and the CI obs-smoke job.
"""

import re
import sys

RE_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
RE_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
RE_TYPE_LINE = re.compile(r"^# TYPE (\S+) (counter|gauge|histogram|summary"
                          r"|untyped)$")
# value: int/float/scientific, +Inf/-Inf/NaN
RE_VALUE = re.compile(r"^[+-]?(?:Inf|NaN|\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
                      r"|\.\d+(?:[eE][+-]?\d+)?)$")

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_labels(raw, lineno, errors):
    """Parses `key="value",key2="value2"` (no surrounding braces).
    Returns a dict; reports malformed pairs."""
    labels = {}
    i, n = 0, len(raw)
    while i < n:
        eq = raw.find("=", i)
        if eq == -1:
            errors.append("line %d: malformed label pair %r" %
                          (lineno, raw[i:]))
            return labels
        name = raw[i:eq]
        if not RE_LABEL_NAME.match(name):
            errors.append("line %d: bad label name %r" % (lineno, name))
        if eq + 1 >= n or raw[eq + 1] != '"':
            errors.append("line %d: unquoted label value for %r" %
                          (lineno, name))
            return labels
        j = eq + 2
        value = []
        closed = False
        while j < n:
            c = raw[j]
            if c == "\\":
                if j + 1 >= n or raw[j + 1] not in ('"', "\\", "n"):
                    errors.append("line %d: bad escape in label %r" %
                                  (lineno, name))
                    return labels
                value.append({"n": "\n"}.get(raw[j + 1], raw[j + 1]))
                j += 2
            elif c == '"':
                closed = True
                j += 1
                break
            else:
                value.append(c)
                j += 1
        if not closed:
            errors.append("line %d: unterminated label value for %r" %
                          (lineno, name))
            return labels
        labels[name] = "".join(value)
        if j < n:
            if raw[j] != ",":
                errors.append("line %d: expected ',' between labels, got %r"
                              % (lineno, raw[j]))
                return labels
            j += 1
        i = j
    return labels


def base_name(name, types):
    """Maps histogram sample names back to their declared family."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            family = name[: -len(suffix)]
            if types.get(family) == "histogram":
                return family
    return name


def le_sort_key(le):
    if le == "+Inf":
        return (1, 0.0)
    try:
        return (0, float(le))
    except ValueError:
        return (2, 0.0)


def validate(text):
    errors = []
    types = {}  # family -> declared type
    samples = []  # (lineno, name, labels, value)

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = RE_TYPE_LINE.match(line)
            if match:
                family, kind = match.groups()
                if not RE_METRIC_NAME.match(family):
                    errors.append("line %d: bad metric name %r" %
                                  (lineno, family))
                if family in types:
                    errors.append("line %d: duplicate TYPE for %s" %
                                  (lineno, family))
                types[family] = kind
            elif not line.startswith(("# HELP", "# EOF")):
                # Unknown comment forms are legal; broken TYPE lines are
                # the thing to catch.
                if line.startswith("# TYPE"):
                    errors.append("line %d: malformed TYPE line: %s" %
                                  (lineno, line))
            continue

        space = line.rfind(" ")
        if space == -1:
            errors.append("line %d: no value: %s" % (lineno, line))
            continue
        series, value_text = line[:space], line[space + 1:]
        if not RE_VALUE.match(value_text):
            errors.append("line %d: bad sample value %r" %
                          (lineno, value_text))
            continue
        if series.endswith("}"):
            brace = series.find("{")
            if brace == -1:
                errors.append("line %d: '}' without '{': %s" %
                              (lineno, line))
                continue
            name = series[:brace]
            labels = parse_labels(series[brace + 1:-1], lineno, errors)
        else:
            name, labels = series, {}
        if not RE_METRIC_NAME.match(name):
            errors.append("line %d: bad metric name %r" % (lineno, name))
            continue
        family = base_name(name, types)
        if family not in types:
            errors.append("line %d: sample %s has no preceding # TYPE %s"
                          % (lineno, name, family))
        samples.append((lineno, name, labels, float(value_text)))

    # Histogram contract per (family, label-set-minus-le).
    for family, kind in sorted(types.items()):
        if kind == "histogram":
            validate_histogram(family, samples, errors)
        elif kind == "counter":
            for lineno, name, _, value in samples:
                if name == family and value < 0:
                    errors.append("line %d: counter %s is negative (%g)" %
                                  (lineno, family, value))
    return errors, types, samples


def validate_histogram(family, samples, errors):
    buckets = {}  # frozenset(labels minus le) -> [(le, lineno, value)]
    sums = {}
    counts = {}
    for lineno, name, labels, value in samples:
        if name == family + "_bucket":
            le = labels.get("le")
            if le is None:
                errors.append("line %d: %s_bucket without le" %
                              (lineno, family))
                continue
            key = frozenset((k, v) for k, v in labels.items() if k != "le")
            buckets.setdefault(key, []).append((le, lineno, value))
        elif name == family + "_sum":
            sums[frozenset(labels.items())] = value
        elif name == family + "_count":
            counts[frozenset(labels.items())] = value

    if not buckets and not sums and not counts:
        errors.append("histogram %s declared but has no samples" % family)
        return
    for key, entries in sorted(buckets.items(), key=lambda kv: sorted(kv[0])):
        entries.sort(key=lambda e: le_sort_key(e[0]))
        label_desc = "{%s}" % ",".join(
            "%s=%s" % kv for kv in sorted(key)) if key else "(no labels)"
        previous = None
        for le, lineno, value in entries:
            if le_sort_key(le)[0] == 2:
                errors.append("line %d: %s_bucket has bad le=%r" %
                              (lineno, family, le))
            if previous is not None and value < previous:
                errors.append(
                    "line %d: %s_bucket %s not cumulative at le=%s "
                    "(%g < %g)" %
                    (lineno, family, label_desc, le, value, previous))
            previous = value
        les = [e[0] for e in entries]
        if "+Inf" not in les:
            errors.append("histogram %s %s is missing le=\"+Inf\"" %
                          (family, label_desc))
            continue
        inf_value = next(e[2] for e in entries if e[0] == "+Inf")
        if key not in counts:
            errors.append("histogram %s %s has no _count sample" %
                          (family, label_desc))
        elif counts[key] != inf_value:
            errors.append(
                "histogram %s %s: le=\"+Inf\" (%g) != _count (%g)" %
                (family, label_desc, inf_value, counts[key]))
        if key not in sums:
            errors.append("histogram %s %s has no _sum sample" %
                          (family, label_desc))


def main(argv):
    path = None
    require_bucket = False
    required = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--require-bucket":
            require_bucket = True
        elif arg == "--require":
            if i + 1 >= len(argv):
                print("prom_validator: --require needs a metric name")
                return 2
            i += 1
            required.append(argv[i])
        elif path is None:
            path = arg
        else:
            print("prom_validator: unexpected argument %r" % arg)
            return 2
        i += 1

    if path is None or path == "-":
        text = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()

    errors, types, samples = validate(text)

    if require_bucket:
        finite = [
            s for s in samples
            if s[1].endswith("_bucket") and s[2].get("le") not in (None,
                                                                   "+Inf")
            and types.get(base_name(s[1], types)) == "histogram"
        ]
        if not finite:
            errors.append("--require-bucket: no histogram exports a "
                          "finite _bucket sample")
    sample_names = {s[1] for s in samples}
    for name in required:
        if name not in sample_names:
            errors.append("--require: no sample of metric %r" % name)

    for message in errors:
        print("prom_validator: %s" % message)
    if errors:
        print("prom_validator: %d problem(s)" % len(errors))
        return 1
    print("prom_validator: ok (%d samples, %d families)" %
          (len(samples), len(types)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
