#!/usr/bin/env python3
"""Self-test for the project's static-analysis passes.

Runs tools/lint/fungus_lint.py and tools/analyze/capability_audit.py
against the fixture trees in tools/lint/testdata/ and asserts:

  * each good tree is clean (exit 0), which also proves the
    pin-discipline allowlist honors tests/core/epoch_test.cc;
  * each bad tree produces exactly the expected (file, rule) findings
    (exit 1) — no missed violations, no spurious ones;
  * the real repo is clean, which proves the testdata exclusion keeps
    these deliberately-broken fixtures out of the production walk.

Registered as the `lint_selftest` ctest so a regression in either tool
fails tier-1, not just the CI lint job.
"""

import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINT = HERE / "fungus_lint.py"
AUDIT = REPO / "tools" / "analyze" / "capability_audit.py"
TESTDATA = HERE / "testdata"

# Every finding the bad trees must produce, as (file, rule) pairs.
# Line numbers are deliberately not pinned — fixtures may grow comments
# — but counts are: a rule firing twice where once is expected fails.
LINT_BAD_EXPECTED = sorted([
    ("src/common/status.h", "nodiscard"),
    ("src/core/offender.cc", "void-discard"),
    ("src/core/offender.cc", "naked-random"),
    ("src/core/offender.cc", "pin-discipline"),
    ("src/core/offender.cc", "metric-naming"),
    ("src/core/offender.cc", "wire-framing"),
    ("src/core/hygiene.cc", "no-suppression"),
    ("src/core/hygiene.cc", "hygiene"),  # tab
    ("src/core/hygiene.cc", "hygiene"),  # trailing whitespace
    ("src/core/hygiene.cc", "hygiene"),  # missing newline at EOF
    ("src/query/vector_eval_extra.cc", "vector-hot-loop"),
    ("src/query/rogue_span.cc", "encoded-access"),
    ("src/server/http_rogue.cc", "http-handler"),  # Table& / .table()
    ("src/server/http_rogue.cc", "http-handler"),  # GetStorageStats()
    ("tests/core/pin_test.cc", "pin-discipline"),
    ("examples/rogue_example.cpp", "public-api"),
    ("tools/rogue_tool.cc", "public-api"),
])

AUDIT_BAD_EXPECTED = sorted([
    ("src/core/unguarded.h", "guarded-by"),
    ("src/core/raw.cc", "raw-mutex"),      # std::mutex member
    ("src/core/raw.cc", "raw-mutex"),      # std::lock_guard
    ("src/core/escape.cc", "no-tsa-escape"),
    ("src/storage/rogue.cc", "apply-phase"),
])

failures = []


def run(tool, root):
    proc = subprocess.run(
        [sys.executable, str(tool), str(root)],
        capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        parts = line.split(": ", 2)
        if len(parts) == 3 and ":" in parts[0]:
            path, _, _ = parts[0].rpartition(":")
            findings.append((path, parts[1]))
    return proc.returncode, sorted(findings), proc.stdout + proc.stderr


def expect(label, tool, root, want_code, want_findings):
    code, findings, output = run(tool, root)
    if code != want_code:
        failures.append("%s: exit %d, want %d\n%s" %
                        (label, code, want_code, output))
    if findings != want_findings:
        missing = [f for f in want_findings if f not in findings]
        extra = [f for f in findings if f not in want_findings]
        failures.append("%s: findings mismatch\n  missing: %s\n"
                        "  extra:   %s" % (label, missing, extra))


def main():
    expect("lint/good", LINT, TESTDATA / "lint_good", 0, [])
    expect("lint/bad", LINT, TESTDATA / "lint_bad", 1,
           LINT_BAD_EXPECTED)
    expect("audit/good", AUDIT, TESTDATA / "audit_good", 0, [])
    expect("audit/bad", AUDIT, TESTDATA / "audit_bad", 1,
           AUDIT_BAD_EXPECTED)
    expect("lint/repo", LINT, REPO, 0, [])
    expect("audit/repo", AUDIT, REPO, 0, [])

    if failures:
        for failure in failures:
            print("FAIL %s" % failure)
        print("lint_selftest: %d failure(s)" % len(failures))
        return 1
    print("lint_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
