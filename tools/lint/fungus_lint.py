#!/usr/bin/env python3
"""FungusDB project lint.

Enforces the repo-specific rules that generic linters cannot:

  nodiscard       src/common/status.h and src/common/result.h must keep
                  the [[nodiscard]] attribute on Status / Result, so the
                  compiler flags every silently-dropped error.
  void-discard    no `(void)SomeCall(...)` escapes from [[nodiscard]];
                  `(void)identifier;` for unused parameters stays legal.
  naked-random    no std::rand / srand / time(nullptr) / random_device /
                  mt19937 outside src/common/random.* — all randomness
                  goes through the seeded, reproducible common/random.
  pin-discipline  no immediately-destroyed epoch pins: `PinRead();` or
                  `BeginWrite();` as a whole statement takes and drops
                  the pin in one expression, which synchronizes nothing
                  and usually means the author thought they were
                  holding it. Scans tests/ too (the compile-time
                  [[nodiscard]] already covers expression contexts);
                  tests/core/epoch_test.cc is the one allowed exception
                  (it tests the pin mechanics themselves).
  wire-framing    raw framing primitives — hton*/ntoh* byte-order calls
                  and memcpy-into-lvalue decoding — only in
                  src/server/wire_format.* (the one place that lays out
                  network bytes) plus the two pre-existing binary codec
                  internals (common/buffer_io.h, summary/hashing.cc).
                  Everything else goes through BufferWriter/BufferReader.
  vector-hot-loop the vectorized scan kernel (src/query/vector_eval.*)
                  must stay Value-free: no GetValue( calls — boxing a
                  Value per row is exactly what the kernel exists to
                  avoid; read typed column spans instead.
  encoded-access  outside src/storage/, no code may assume the plain
                  (thawed) representation: the raw span accessors
                  (ts_data/freshness_data/alive_data), Segment::column()
                  and the columns_ member all assert !is_frozen(), so a
                  caller that compiles today crashes the moment the
                  freeze policy touches its table. Everything above the
                  storage layer goes through the tier-independent cell
                  accessors and the decode-to-scratch API
                  (storage/segment.h). One carve-out:
                  src/verify/corruptor.cc seeds corruption through its
                  friendship on purpose.
  http-handler    the HTTP observability plane (src/server/http_*) reads
                  database state only through epoch-pinned facade calls
                  and the public stats structs (TableHandle,
                  Database::RotReportFor, StorageStats) — never through
                  Table pointers/references, the TableHandle::table()
                  escape hatch, MutableTable, BuildRotReport or
                  GetStorageStats on a raw Table. A handler that held a
                  Table* could outlive its pin or bypass the tier
                  contract; the narrow surface keeps the plane auditable.
  public-api      examples/ and tools/ consume the library through the
                  public headers (include/fungusdb/...), never through
                  src/... directly — they are the reference embedders,
                  so a src include there silently grows the de-facto
                  API. The two daemons keep narrow, explicit carve-outs
                  for server internals that are deliberately not public
                  (fungusd.cc -> server/server.h; funguscheck.cc ->
                  persist/fsck.h + server/wire_format.h).
  metric-naming   every literal metric name handed to the MetricsRegistry
                  API must follow fungusdb.<subsystem>.<name> (lowercase
                  dotted, at least two segments after the fungusdb
                  prefix) so dashboards and the Prometheus exporter see
                  one coherent namespace (DESIGN.md §12).
  no-suppression  no NOLINT / lint-off escapes inside src/.
  hygiene         no tabs, no trailing whitespace, newline at EOF.

The concurrency-contract rules (guarded-by coverage, raw-mutex ban,
apply-phase whitelist) live in tools/analyze/capability_audit.py.

Usage: tools/lint/fungus_lint.py [repo-root]
Exits 0 when clean, 1 with one "file:line: rule: message" per finding.
"""

import pathlib
import re
import sys

CXX_SUFFIXES = {".h", ".cc", ".cpp"}

PIN_DISCIPLINE_ALLOWLIST = {
    "tests/core/epoch_test.cc",  # tests the pin mechanics themselves
}

NAKED_RANDOM_ALLOWLIST = {
    "src/common/random.h",
    "src/common/random.cc",
}

WIRE_FRAMING_ALLOWLIST = {
    "src/server/wire_format.h",   # the wire protocol itself
    "src/server/wire_format.cc",
    "src/common/buffer_io.h",     # the codec the protocol is built on
    "src/summary/hashing.cc",     # double -> bits for hashing, not framing
}

# Top-level directories under src/ — an include of "<one of these>/..."
# from examples/ or tools/ bypasses the public API.
SRC_TOP_DIRS = ("common", "core", "fungus", "persist", "pipeline",
                "query", "server", "storage", "summary", "verify",
                "workload")

# The daemons may reach named server internals that are deliberately
# not part of the embedder API.
PUBLIC_API_ALLOWLIST = {
    "tools/fungusd.cc": {"server/server.h", "server/http_debug.h"},
    "tools/funguscheck.cc": {"persist/fsck.h", "server/wire_format.h"},
}

# The corruption seeder writes raw segment state through its friendship
# by design — it exists to plant exactly the damage fsck must detect.
ENCODED_ACCESS_ALLOWLIST = {
    "src/verify/corruptor.cc",
}

RE_VOID_DISCARD = re.compile(r"\(void\)\s*[\w:]+(?:\.|->|\()")
RE_VOID_BARE = re.compile(r"\(void\)\s*\w+\s*;")
RE_NAKED_RANDOM = re.compile(
    r"(?:std::)?(?:\brand\s*\(|\bsrand\s*\(|\brandom_device\b"
    r"|\bmt19937\b)|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)")
RE_SUPPRESSION = re.compile(r"NOLINT|fungus-lint-off")
RE_WIRE_FRAMING = re.compile(
    r"\b(?:hton|ntoh)(?:s|l|ll)\s*\("
    r"|\b(?:__builtin_)?memcpy\s*\(\s*&")
RE_GET_VALUE = re.compile(r"\bGetValue\s*\(")
RE_ENCODED_ACCESS = re.compile(
    r"\b(?:ts_data|freshness_data|alive_data)\s*\("
    r"|\bcolumns_\b"
    r"|(?:\.|->)\s*column\s*\(")
# A statement that is nothing but a pin acquisition: the scoped result
# is a temporary, destroyed before the semicolon.
RE_PIN_DISCARD = re.compile(
    r"^\s*(?:[\w:]+(?:\(\s*\))?\s*(?:\.|->)\s*)*"
    r"(?:PinRead|BeginWrite)\s*\(\s*\)\s*;")
RE_HTTP_HANDLER = re.compile(
    r"\bTable\b\s*[*&]"
    r"|\bMutableTable\s*\("
    r"|(?:\.|->)\s*table\s*\("
    r"|\bBuildRotReport\s*\("
    r"|\bGetStorageStats\s*\(")
RE_METRIC_CALL = re.compile(
    r"\b(?:IncrementCounter|SetGauge|RecordHistogram|GetCounter"
    r"|GetGauge|FindHistogram|Histogram)\s*\(\s*\"([^\"]*)\"")
RE_METRIC_NAME = re.compile(r"^fungusdb(?:\.[a-z0-9_]+){2,}$")
RE_SRC_INCLUDE = re.compile(
    r'^\s*#\s*include\s*"((?:%s)/[^"]+)"' % "|".join(SRC_TOP_DIRS))


def scrub(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so rules never fire on prose or test data."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def scrub_comments_only(text):
    """Blanks out comments but KEEPS string literals, for rules that
    inspect literal arguments (metric-naming)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i:i + 2])
                    i += 2
                else:
                    out.append(text[i])
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lint_pin_discipline(rel, code, findings):
    if rel in PIN_DISCIPLINE_ALLOWLIST:
        return
    for lineno, line in enumerate(code.splitlines(), start=1):
        if RE_PIN_DISCARD.match(line):
            findings.append((rel, lineno, "pin-discipline",
                             "epoch pin discarded in the same statement;"
                             " bind it (EpochManager::ReadPin pin = ...)"
                             " so it covers the reads it protects"))


def lint_public_api(rel, raw, findings):
    """Flags src/... includes in the reference embedders (examples/,
    tools/). Scans a comment-only scrub so commented-out includes do
    not fire, but the include path (a string literal) survives."""
    if not (rel.startswith("examples/") or rel.startswith("tools/")):
        return
    allowed = PUBLIC_API_ALLOWLIST.get(rel, set())
    for lineno, line in enumerate(scrub_comments_only(raw).splitlines(),
                                  start=1):
        match = RE_SRC_INCLUDE.match(line)
        if match and match.group(1) not in allowed:
            findings.append((rel, lineno, "public-api",
                             'include "%s" reaches into src/; use the'
                             " public fungusdb/ headers"
                             " (include/fungusdb)" % match.group(1)))


def lint_file(root, path, findings):
    rel = path.relative_to(root).as_posix()
    raw = path.read_text(encoding="utf-8")
    code = scrub(raw)
    lint_pin_discipline(rel, code, findings)
    lint_public_api(rel, raw, findings)

    # Metric names live inside string literals, so this rule scans a
    # comment-only scrub that keeps them.
    for lineno, line in enumerate(scrub_comments_only(raw).splitlines(),
                                  start=1):
        for match in RE_METRIC_CALL.finditer(line):
            name = match.group(1)
            if not RE_METRIC_NAME.match(name):
                findings.append((rel, lineno, "metric-naming",
                                 "metric '%s' must be named"
                                 " fungusdb.<subsystem>.<name>"
                                 " (DESIGN.md §12)" % name))

    for lineno, line in enumerate(code.splitlines(), start=1):
        if RE_VOID_DISCARD.search(line) and not RE_VOID_BARE.search(line):
            findings.append((rel, lineno, "void-discard",
                             "(void)-discarded call defeats [[nodiscard]];"
                             " handle the Status/Result or use"
                             " FUNGUSDB_CHECK_OK"))
        if (rel not in NAKED_RANDOM_ALLOWLIST
                and RE_NAKED_RANDOM.search(line)):
            findings.append((rel, lineno, "naked-random",
                             "use common/random (seeded, reproducible)"
                             " instead of ad-hoc randomness"))
        if (rel not in WIRE_FRAMING_ALLOWLIST
                and RE_WIRE_FRAMING.search(line)):
            findings.append((rel, lineno, "wire-framing",
                             "raw framing primitive outside"
                             " src/server/wire_format.*; use"
                             " BufferWriter/BufferReader"))
        if (rel.startswith("src/query/vector_eval")
                and RE_GET_VALUE.search(line)):
            findings.append((rel, lineno, "vector-hot-loop",
                             "GetValue( boxes a Value per row; the"
                             " vector kernel must read typed column"
                             " spans"))
        if (rel.startswith("src/server/http_")
                and RE_HTTP_HANDLER.search(line)):
            findings.append((rel, lineno, "http-handler",
                             "HTTP handlers must not touch Table or the"
                             " plain tier directly; read through epoch-"
                             "pinned facade calls and the public stats"
                             " structs (TableHandle::storage_stats,"
                             " Database::RotReportFor)"))
        if (rel.startswith("src/")
                and not rel.startswith("src/storage/")
                and rel not in ENCODED_ACCESS_ALLOWLIST
                and RE_ENCODED_ACCESS.search(line)):
            findings.append((rel, lineno, "encoded-access",
                             "raw plain-tier segment access outside"
                             " src/storage/ breaks on frozen segments;"
                             " use the tier-independent accessors or"
                             " the decode-to-scratch API"
                             " (storage/segment.h)"))
    # Suppressions live in comments, so they are matched on RAW text.
    for lineno, line in enumerate(raw.splitlines(), start=1):
        if rel.startswith("src/") and RE_SUPPRESSION.search(line):
            findings.append((rel, lineno, "no-suppression",
                             "lint suppressions are not allowed in src/"))
        if "\t" in line:
            findings.append((rel, lineno, "hygiene", "tab character"))
        if line != line.rstrip():
            findings.append((rel, lineno, "hygiene",
                             "trailing whitespace"))
    if raw and not raw.endswith("\n"):
        findings.append((rel, len(raw.splitlines()), "hygiene",
                         "missing newline at end of file"))


def lint_nodiscard_presence(root, findings):
    for rel, cls in (("src/common/status.h", "Status"),
                     ("src/common/result.h", "Result")):
        target = root / rel
        if not target.is_file():
            # Fixture trees used by the lint self-test omit these files.
            continue
        text = target.read_text(encoding="utf-8")
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls, text):
            findings.append((rel, 1, "nodiscard",
                             "class %s must carry [[nodiscard]]" % cls))


def walk_sources(root, tops):
    for top in tops:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if "testdata" in path.relative_to(root).parts:
                continue  # lint fixtures contain deliberate violations
            if path.suffix in CXX_SUFFIXES and path.is_file():
                yield path


def main():
    # Default to the repo root (two levels above tools/lint/) so the
    # linter works from any cwd; an explicit root can still be passed.
    default_root = pathlib.Path(__file__).resolve().parent.parent.parent
    root = pathlib.Path(
        sys.argv[1]).resolve() if len(sys.argv) > 1 else default_root
    findings = []
    lint_nodiscard_presence(root, findings)
    for path in walk_sources(root, ("src", "tools", "fuzz")):
        lint_file(root, path, findings)
    # Tests are exempt from the style rules above, but a discarded pin
    # in a test silently voids the very guarantee the test exercises —
    # so pin-discipline alone also covers tests/.
    for path in walk_sources(root, ("tests",)):
        rel = path.relative_to(root).as_posix()
        lint_pin_discipline(rel, scrub(path.read_text(encoding="utf-8")),
                            findings)
    # Examples are likewise exempt from style rules, but as the
    # reference embedders they must respect the public-API boundary.
    for path in walk_sources(root, ("examples",)):
        rel = path.relative_to(root).as_posix()
        lint_public_api(rel, path.read_text(encoding="utf-8"), findings)

    for rel, lineno, rule, message in findings:
        print("%s:%d: %s: %s" % (rel, lineno, rule, message))
    if findings:
        print("fungus_lint: %d finding(s)" % len(findings))
        return 1
    print("fungus_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
