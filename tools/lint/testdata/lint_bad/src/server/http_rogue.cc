#include "core/database.h"

namespace fungusdb::server {

// Deliberate violations: an HTTP handler reaching Table directly — the
// escape hatch, then a raw-Table stats call — instead of reading
// through epoch-pinned facade calls and the public stats structs.
uint64_t RogueSegmentCount(TableHandle handle) {
  const Table& raw = handle.table();
  return raw.GetStorageStats().total_segments;
}

}  // namespace fungusdb::server
