#include "query/vector_eval.h"

namespace fungusdb {

void BoxedRow(const Table& table, RowId row) {
  Value v = table.GetValue(row, 0).value();
  (void)v;
}

}  // namespace fungusdb
