#include "storage/segment.h"

namespace fungusdb {

// Deliberate violation: a plain-tier span read above the storage layer
// asserts (and crashes) the moment the segment freezes.
uint64_t CountLiveTheWrongWay(const Segment& seg) {
  const uint8_t* alive = seg.alive_data();
  uint64_t live = 0;
  for (size_t off = 0; off < seg.num_rows(); ++off) live += alive[off];
  return live;
}

}  // namespace fungusdb
