#ifndef FIXTURE_BAD_STATUS_H_
#define FIXTURE_BAD_STATUS_H_

namespace fungusdb {

class Status {
 public:
  bool ok() const { return true; }
};

}  // namespace fungusdb

#endif  // FIXTURE_BAD_STATUS_H_
