#include <cstdlib>

#include "core/epoch.h"

namespace fungusdb {

void Offender(Database& db, MetricsRegistry& metrics) {
  (void)db.Execute("SELECT 1");
  int jitter = std::rand();
  db.epochs().PinRead();
  metrics.IncrementCounter("decays");
  uint32_t framed = htonl(static_cast<uint32_t>(jitter));
  (void)framed;
}

}  // namespace fungusdb
