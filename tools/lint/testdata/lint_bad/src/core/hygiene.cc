#include <cstdint>

namespace fungusdb {

int Sloppy() {
	int tabbed = 1;  // NOLINT
  int trailing = 2;   
  return tabbed + trailing;
}

}  // namespace fungusdb