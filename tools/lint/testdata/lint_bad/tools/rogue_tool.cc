// public-api violation: a tool including a storage internal. Tools are
// not on the allowlist for this header, so the rule must fire.
#include "storage/segment.h"

int main() { return 0; }
