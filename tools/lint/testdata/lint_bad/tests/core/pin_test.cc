#include "core/epoch.h"

namespace fungusdb {

// Not the allowlisted epoch_test.cc path: the discarded pin must fire
// even inside tests/.
void DiscardedPinInTest(EpochManager& epochs) {
  epochs.BeginWrite();
}

}  // namespace fungusdb
