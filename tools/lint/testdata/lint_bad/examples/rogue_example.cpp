// public-api violation: an example reaching into src/ directly instead
// of going through the public include/fungusdb/ headers.
#include "core/database.h"

int main() { return 0; }
