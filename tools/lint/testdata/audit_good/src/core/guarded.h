#ifndef FIXTURE_AUDIT_GOOD_GUARDED_H_
#define FIXTURE_AUDIT_GOOD_GUARDED_H_

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fungusdb {

// Every mutable member of a Mutex-owning class is either guarded,
// const, or self-synchronizing — the audit must stay clean.
class Cache {
 public:
  void Put(int key) FUNGUS_EXCLUDES(mu_);
  int hits() const FUNGUS_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  CondVar filled_;
  std::atomic<uint64_t> generation_{0};
  const int capacity_ = 64;
  int hits_ FUNGUS_GUARDED_BY(mu_) = 0;
  std::vector<int> entries_ FUNGUS_GUARDED_BY(mu_);
};

}  // namespace fungusdb

#endif  // FIXTURE_AUDIT_GOOD_GUARDED_H_
