#include "storage/shard.h"

namespace fungusdb {

void RogueMutation(Shard& shard, uint32_t row) {
  shard.Kill(row);
}

}  // namespace fungusdb
