#include <mutex>

namespace fungusdb {

std::mutex big_lock;

void Touch() {
  std::lock_guard<std::mutex> hold(big_lock);
}

}  // namespace fungusdb
