#include "common/thread_annotations.h"

namespace fungusdb {

void SilencedFinding() FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
}

}  // namespace fungusdb
