#ifndef FIXTURE_AUDIT_BAD_UNGUARDED_H_
#define FIXTURE_AUDIT_BAD_UNGUARDED_H_

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fungusdb {

class Cache {
 public:
  void Put(int key) FUNGUS_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  int hits_ FUNGUS_GUARDED_BY(mu_) = 0;
  int misses_ = 0;
};

}  // namespace fungusdb

#endif  // FIXTURE_AUDIT_BAD_UNGUARDED_H_
