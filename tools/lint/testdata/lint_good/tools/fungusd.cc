// The daemon's allowlisted carve-out: server/server.h is deliberately
// not public API, and tools/fungusd.cc is the one file allowed to
// include it. Everything else comes through fungusdb/ headers.
#include "fungusdb/database.h"
#include "server/server.h"

int main() { return 0; }
