// The clean spelling: examples consume the public umbrella header.
// The commented-out include below must NOT fire public-api — the rule
// scans a comment-only scrub.
// #include "core/database.h"
#include "fungusdb/fungusdb.h"

int main() { return 0; }
