#include "core/epoch.h"

namespace fungusdb {

// A deliberately discarded pin: legal ONLY here — this path is the
// pin-discipline allowlist entry (the real epoch_test exercises pin
// mechanics). The self-test asserts this tree stays clean.
void AllowlistedDiscard(EpochManager& epochs) {
  epochs.PinRead();
}

}  // namespace fungusdb
