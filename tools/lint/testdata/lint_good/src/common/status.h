#ifndef FIXTURE_GOOD_STATUS_H_
#define FIXTURE_GOOD_STATUS_H_

namespace fungusdb {

class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

}  // namespace fungusdb

#endif  // FIXTURE_GOOD_STATUS_H_
