#ifndef FIXTURE_GOOD_RESULT_H_
#define FIXTURE_GOOD_RESULT_H_

namespace fungusdb {

template <typename T>
class [[nodiscard]] Result {
 public:
  bool ok() const { return true; }
};

}  // namespace fungusdb

#endif  // FIXTURE_GOOD_RESULT_H_
