#include "core/database.h"

namespace fungusdb::server {

// The clean spelling of http_rogue.cc: database reads go through the
// epoch-pinned facade and the public stats structs only.
uint64_t CleanSegmentCount(Database& db, const std::string& name) {
  EpochManager::ReadPin pin(db.epochs());
  Result<TableHandle> handle = db.GetTable(name);
  if (!handle.ok()) return 0;
  return handle->storage_stats().total_segments;
}

}  // namespace fungusdb::server
