#include "core/epoch.h"

#include "common/metrics.h"
#include "common/random.h"

namespace fungusdb {

// The clean spelling of everything lint_bad/ gets wrong: a bound pin,
// a namespaced metric, seeded randomness, no raw framing.
double CleanUse(EpochManager& epochs, MetricsRegistry& metrics,
                Random& rng) {
  EpochManager::ReadPin pin = epochs.PinRead();
  metrics.IncrementCounter("fungusdb.core.clean_calls");
  return rng.NextDouble();
}

}  // namespace fungusdb
