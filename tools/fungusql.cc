// fungusql — an interactive shell for FungusDB.
//
//   ./build/tools/fungusql                       # embedded database
//   ./build/tools/fungusql --connect host:port   # talk to a fungusd
//
// SQL statements run against an in-memory database on a virtual clock;
// meta commands (backslash-prefixed) manage tables, fungi, time, CSV
// import/export, and snapshots. Type \help inside the shell.
// Semicolons separate statements on one line; each gets its own result.
//
// With --connect, every line is shipped to the server instead (which
// supports SQL plus the remote meta subset — \health \now \metrics
// \fsck \tables \advance \create \insert). Errors print with their
// stable code, e.g. `error: E:1203 TableNotFound: no table "t"`.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fungusdb/client.h"
#include "fungusdb/common.h"
#include "fungusdb/csv.h"
#include "fungusdb/database.h"
#include "fungusdb/fungi.h"
#include "fungusdb/persist.h"
#include "fungusdb/query.h"
#include "fungusdb/summaries.h"

namespace fungusdb {
namespace {

constexpr const char* kHelp = R"(fungusql meta commands:
  \help                                  this text
  \tables                                list tables
  \create <name> (<col> <type> [null], ...)   create a table
                                         types: int64 float64 string bool timestamp
  \insert <table> <csv fields>           append one row (e.g. \insert t 1,hot)
  \attach <fungus> <table> <period> [arg]     attach a decay fungus
         fungi: retention <dur> | exponential <half-life> | egi |
                window <rows> | quota <bytes>
  \advance <duration>                    advance virtual time (e.g. 2h, 1d3h)
  \now                                   show virtual time
  \health                                per-table health report
  \fsck                                  run the invariant checker
  \analyze <table>                       per-column statistics
  \rot <table>                           rot report: freshness histogram,
                                         rot front, ticks-to-death, heatmap
  \storage [table]                       cold-tier stats: frozen segments,
                                         encoded vs plain bytes, thaws
  \metrics [prom]                        metrics dump (prom: Prometheus text)
  \trace on|off                          toggle the span tracer
  \trace dump [file]                     Chrome trace JSON (stdout or file)
  \slowlog <micros>                      slow-query log threshold (0 = off)
  \cellar                                list cooked summaries
  \import <table> <file.csv>             ingest a CSV file (header row)
  \export <table> <file.csv>             write live rows as CSV
  \save <file>                           snapshot the database
  \load <file>                           replace the database from a snapshot
  \quit                                  exit
Anything else is executed as SQL, e.g.
  SELECT count(*) FROM t
  CONSUME SELECT * FROM t WHERE __freshness < 0.2
)";

std::vector<std::string> Tokens(const std::string& line) {
  std::istringstream stream(line);
  std::vector<std::string> out;
  std::string token;
  while (stream >> token) out.push_back(token);
  return out;
}

Result<DataType> TypeByName(const std::string& name) {
  for (DataType t : {DataType::kInt64, DataType::kFloat64,
                     DataType::kString, DataType::kBool,
                     DataType::kTimestamp}) {
    if (name == DataTypeName(t)) return t;
  }
  return Status::ParseError("unknown type '" + name + "'");
}

/// Parses "(a int64, b float64 null, c string)".
Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::string body = spec;
  const size_t open = body.find('(');
  const size_t close = body.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return Status::ParseError("expected (col type, ...)");
  }
  body = body.substr(open + 1, close - open - 1);
  std::vector<Field> fields;
  for (const std::string& part : Split(body, ',')) {
    std::vector<std::string> words = Tokens(part);
    if (words.size() < 2 || words.size() > 3) {
      return Status::ParseError("bad column spec '" + part + "'");
    }
    Field f;
    f.name = words[0];
    FUNGUSDB_ASSIGN_OR_RETURN(f.type, TypeByName(ToLower(words[1])));
    if (words.size() == 3) {
      if (ToLower(words[2]) != "null") {
        return Status::ParseError("expected 'null', got '" + words[2] +
                                  "'");
      }
      f.nullable = true;
    }
    fields.push_back(std::move(f));
  }
  return Schema::Make(std::move(fields));
}

class Shell {
 public:
  Shell() : db_(std::make_unique<Database>()) {}
  explicit Shell(server::Client client)
      : remote_(std::make_unique<server::Client>(std::move(client))) {}

  int Run() {
    std::string line;
    // Piped sessions (CI smoke tests, scripts) get clean output with no
    // banner or prompts; humans on a terminal get both.
    const bool interactive = ::isatty(STDIN_FILENO) != 0;
    if (interactive) {
      std::printf("FungusDB shell — \\help for commands, \\quit to exit\n");
    }
    while (true) {
      if (interactive) {
        std::printf("fungus> ");
        std::fflush(stdout);
      }
      if (!std::getline(std::cin, line)) break;
      const std::string trimmed(StripWhitespace(line));
      if (trimmed.empty()) continue;
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      Status status;
      if (remote_ != nullptr) {
        status = RunRemote(trimmed);
      } else {
        status = trimmed[0] == '\\' ? RunMeta(trimmed) : RunSql(trimmed);
      }
      if (!status.ok()) {
        // The stable numeric code leads so scripts can match on it
        // without parsing prose, e.g. `error: E:1203 TableNotFound: ...`.
        std::printf("error: %s: %s\n", status.ErrorLabel().c_str(),
                    status.message().c_str());
        // A failed statement makes the whole session fail, so scripted
        // sessions (smoke tests, CI pipelines) can detect it.
        exit_code_ = 1;
      }
    }
    return exit_code_;
  }

 private:
  void PrintResultSet(const ResultSet& rs) {
    // Meta commands ship multi-line text (reports, trace JSON) as one
    // string cell; print it raw instead of mangling it through the
    // table renderer's column truncation.
    if (rs.rows.size() == 1 && rs.rows[0].size() == 1 &&
        rs.rows[0][0].type() == DataType::kString &&
        rs.rows[0][0].AsString().find('\n') != std::string::npos) {
      std::printf("%s", rs.rows[0][0].AsString().c_str());
      return;
    }
    std::printf("%s", rs.ToString(40).c_str());
    if (rs.stats.rows_consumed > 0) {
      std::printf("consumed %llu tuples\n",
                  static_cast<unsigned long long>(rs.stats.rows_consumed));
    }
  }

  /// Prints each batch result; failures are reported per statement
  /// (with their stable code) and fail the session without aborting
  /// the rest of the batch.
  Status PrintBatch(std::vector<Result<ResultSet>> results) {
    for (Result<ResultSet>& result : results) {
      if (!result.ok()) {
        std::printf("error: %s: %s\n",
                    result.status().ErrorLabel().c_str(),
                    result.status().message().c_str());
        exit_code_ = 1;
        continue;
      }
      PrintResultSet(result.value());
    }
    return Status::OK();
  }

  Status RunSql(const std::string& sql) {
    // One line may hold several ;-separated statements; the batch API
    // runs them all and reports per-statement errors.
    const std::vector<std::string_view> statements = SplitStatements(sql);
    if (statements.empty()) return Status::OK();
    return PrintBatch(db_->ExecuteBatch(statements));
  }

  /// Ships the whole line (SQL or meta) to the fungusd; the server
  /// decides what it supports.
  Status RunRemote(const std::string& line) {
    // `\trace dump <file>` runs client-side: the server returns the
    // trace JSON as one cell, and the shell writes it to the local file.
    const std::vector<std::string> words = Tokens(line);
    if (words.size() == 3 && words[0] == "\\trace" && words[1] == "dump") {
      FUNGUSDB_ASSIGN_OR_RETURN(
          std::vector<Result<ResultSet>> results,
          remote_->Execute(std::vector<std::string>{"\\trace dump"}));
      if (results.size() != 1) {
        return Status::Internal("expected one result for \\trace dump");
      }
      FUNGUSDB_RETURN_IF_ERROR(results[0].status());
      const ResultSet& rs = results[0].value();
      if (rs.rows.size() != 1 || rs.rows[0].size() != 1 ||
          rs.rows[0][0].type() != DataType::kString) {
        return Status::Internal("malformed \\trace dump response");
      }
      return WriteTextFile(words[2], rs.rows[0][0].AsString());
    }
    std::vector<std::string> statements;
    if (line[0] == '\\') {
      statements.push_back(line);
    } else {
      for (std::string_view statement : SplitStatements(line)) {
        statements.emplace_back(statement);
      }
    }
    if (statements.empty()) return Status::OK();
    FUNGUSDB_ASSIGN_OR_RETURN(std::vector<Result<ResultSet>> results,
                              remote_->Execute(statements));
    return PrintBatch(std::move(results));
  }

  Status RunMeta(const std::string& line) {
    const std::vector<std::string> args = Tokens(line);
    const std::string& cmd = args[0];
    if (cmd == "\\help") {
      std::printf("%s", kHelp);
      return Status::OK();
    }
    if (cmd == "\\tables") {
      for (const std::string& name : db_->TableNames()) {
        const TableHandle t = db_->GetTable(name).value();
        std::printf("  %s %s — %llu live rows\n", name.c_str(),
                    t.schema().ToString().c_str(),
                    static_cast<unsigned long long>(t.live_rows()));
      }
      return Status::OK();
    }
    if (cmd == "\\create") {
      if (args.size() < 2) {
        return Status::InvalidArgument("usage: \\create <name> (...)");
      }
      // Search after the command token — the table name may be a
      // substring of "\create" itself (e.g. a table called "c").
      const size_t name_end =
          line.find(args[1], cmd.size()) + args[1].size();
      FUNGUSDB_ASSIGN_OR_RETURN(Schema schema,
                                ParseSchemaSpec(line.substr(name_end)));
      FUNGUSDB_RETURN_IF_ERROR(
          db_->CreateTable(args[1], std::move(schema)).status());
      std::printf("created table %s\n", args[1].c_str());
      return Status::OK();
    }
    if (cmd == "\\insert") {
      if (args.size() < 3) {
        return Status::InvalidArgument(
            "usage: \\insert <table> <csv fields>");
      }
      FUNGUSDB_ASSIGN_OR_RETURN(TableHandle table, db_->GetTable(args[1]));
      const size_t name_end =
          line.find(args[1], cmd.size()) + args[1].size();
      const std::string csv(StripWhitespace(line.substr(name_end)));
      const std::vector<std::string> fields = SplitCsvLine(csv, ',');
      const Schema& schema = table.schema();
      if (fields.size() != schema.num_fields()) {
        return Status::InvalidArgument(
            "expected " + std::to_string(schema.num_fields()) +
            " fields, got " + std::to_string(fields.size()));
      }
      std::vector<Value> values;
      values.reserve(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        const Field& field = schema.fields()[i];
        FUNGUSDB_ASSIGN_OR_RETURN(
            Value value,
            ParseCsvField(fields[i], field.type, field.nullable));
        values.push_back(std::move(value));
      }
      FUNGUSDB_ASSIGN_OR_RETURN(RowId row, db_->Insert(args[1], values));
      std::printf("inserted row %llu\n",
                  static_cast<unsigned long long>(row));
      return Status::OK();
    }
    if (cmd == "\\attach") return Attach(args);
    if (cmd == "\\advance") {
      if (args.size() != 2) {
        return Status::InvalidArgument("usage: \\advance <duration>");
      }
      FUNGUSDB_ASSIGN_OR_RETURN(Duration d, ParseDuration(args[1]));
      FUNGUSDB_ASSIGN_OR_RETURN(uint64_t ticks, db_->AdvanceTime(d));
      std::printf("advanced to t=%s (%llu decay ticks)\n",
                  FormatDuration(db_->Now()).c_str(),
                  static_cast<unsigned long long>(ticks));
      return Status::OK();
    }
    if (cmd == "\\now") {
      std::printf("t=%s\n", FormatDuration(db_->Now()).c_str());
      return Status::OK();
    }
    if (cmd == "\\health") {
      std::printf("%s", db_->Health().ToString().c_str());
      return Status::OK();
    }
    if (cmd == "\\fsck") {
      const verify::Report report = db_->Fsck();
      std::printf("%s", report.ToString().c_str());
      return report.ToStatus();
    }
    if (cmd == "\\rot") {
      if (args.size() != 2) {
        return Status::InvalidArgument("usage: \\rot <table>");
      }
      FUNGUSDB_ASSIGN_OR_RETURN(TableHandle table, db_->GetTable(args[1]));
      std::printf("%s", BuildRotReport(table.table(), &db_->scheduler())
                            .ToString()
                            .c_str());
      return Status::OK();
    }
    if (cmd == "\\storage") {
      if (args.size() > 2) {
        return Status::InvalidArgument("usage: \\storage [table]");
      }
      std::vector<std::string> names;
      if (args.size() == 2) {
        FUNGUSDB_RETURN_IF_ERROR(db_->GetTable(args[1]).status());
        names.push_back(args[1]);
      } else {
        names = db_->TableNames();
      }
      for (const std::string& name : names) {
        FUNGUSDB_ASSIGN_OR_RETURN(TableHandle table, db_->GetTable(name));
        const StorageStats st = table.table().GetStorageStats();
        const double ratio =
            (st.frozen_segments > 0 && st.encoded_bytes > 0)
                ? static_cast<double>(st.plain_bytes_before) /
                      static_cast<double>(st.encoded_bytes)
                : 0.0;
        std::printf(
            "  %-24s segments=%llu frozen=%llu encoded=%llu plain=%llu "
            "ratio=%.2f freezes=%llu thaws=%llu\n",
            name.c_str(),
            static_cast<unsigned long long>(st.total_segments),
            static_cast<unsigned long long>(st.frozen_segments),
            static_cast<unsigned long long>(st.encoded_bytes),
            static_cast<unsigned long long>(st.plain_bytes_before),
            ratio,
            static_cast<unsigned long long>(st.segments_frozen_total),
            static_cast<unsigned long long>(st.thaw_count));
      }
      return Status::OK();
    }
    if (cmd == "\\metrics") {
      if (args.size() == 2 && args[1] == "prom") {
        std::printf("%s", db_->metrics().PrometheusReport().c_str());
        return Status::OK();
      }
      if (args.size() != 1) {
        return Status::InvalidArgument("usage: \\metrics [prom]");
      }
      std::printf("%s", db_->metrics().Report().c_str());
      return Status::OK();
    }
    if (cmd == "\\trace") {
      if (args.size() == 2 && args[1] == "on") {
        Tracer::Global().Enable();
        std::printf("tracing enabled\n");
        return Status::OK();
      }
      if (args.size() == 2 && args[1] == "off") {
        Tracer::Global().Disable();
        std::printf("tracing disabled\n");
        return Status::OK();
      }
      if ((args.size() == 2 || args.size() == 3) && args[1] == "dump") {
        const std::string json = Tracer::Global().ExportChromeJson();
        if (args.size() == 3) return WriteTextFile(args[2], json);
        std::printf("%s", json.c_str());
        return Status::OK();
      }
      return Status::InvalidArgument("usage: \\trace on|off|dump [file]");
    }
    if (cmd == "\\slowlog") {
      if (args.size() != 2) {
        return Status::InvalidArgument("usage: \\slowlog <micros>");
      }
      char* end = nullptr;
      const long long us = std::strtoll(args[1].c_str(), &end, 10);
      if (end == args[1].c_str() || *end != '\0' || us < 0) {
        return Status::InvalidArgument("bad threshold '" + args[1] + "'");
      }
      db_->set_slow_query_micros(us);
      std::printf("slow-query threshold %lldus%s\n", us,
                  us == 0 ? " (disabled)" : "");
      return Status::OK();
    }
    if (cmd == "\\analyze") {
      if (args.size() != 2) {
        return Status::InvalidArgument("usage: \\analyze <table>");
      }
      FUNGUSDB_ASSIGN_OR_RETURN(TableHandle table, db_->GetTable(args[1]));
      std::printf("%s", AnalyzeTable(table.table()).ToString().c_str());
      return Status::OK();
    }
    if (cmd == "\\cellar") {
      for (const Cellar::EntryInfo& e : db_->cellar().List()) {
        std::printf("  %-24s %-18s freshness=%.3f obs=%llu %s\n",
                    e.name.c_str(), e.kind.c_str(), e.freshness,
                    static_cast<unsigned long long>(e.observations),
                    FormatBytes(e.memory_bytes).c_str());
      }
      return Status::OK();
    }
    if (cmd == "\\import") {
      if (args.size() != 3) {
        return Status::InvalidArgument("usage: \\import <table> <file>");
      }
      FUNGUSDB_ASSIGN_OR_RETURN(TableHandle table, db_->GetTable(args[1]));
      std::ifstream file(args[2]);
      if (!file) return Status::NotFound("cannot open " + args[2]);
      CsvSource source(&file, table.schema());
      FUNGUSDB_ASSIGN_OR_RETURN(uint64_t n,
                                db_->Ingest(args[1], source, UINT64_MAX));
      FUNGUSDB_RETURN_IF_ERROR(source.status());
      std::printf("imported %llu rows into %s\n",
                  static_cast<unsigned long long>(n), args[1].c_str());
      return Status::OK();
    }
    if (cmd == "\\export") {
      if (args.size() != 3) {
        return Status::InvalidArgument("usage: \\export <table> <file>");
      }
      FUNGUSDB_ASSIGN_OR_RETURN(TableHandle table, db_->GetTable(args[1]));
      std::ofstream file(args[2], std::ios::trunc);
      if (!file) return Status::Internal("cannot open " + args[2]);
      FUNGUSDB_RETURN_IF_ERROR(WriteCsv(table.table(), file));
      std::printf("exported %llu rows\n",
                  static_cast<unsigned long long>(table.live_rows()));
      return Status::OK();
    }
    if (cmd == "\\save") {
      if (args.size() != 2) {
        return Status::InvalidArgument("usage: \\save <file>");
      }
      FUNGUSDB_RETURN_IF_ERROR(SaveDatabaseSnapshot(*db_, args[1]));
      std::printf("saved snapshot to %s\n", args[1].c_str());
      return Status::OK();
    }
    if (cmd == "\\load") {
      if (args.size() != 2) {
        return Status::InvalidArgument("usage: \\load <file>");
      }
      FUNGUSDB_ASSIGN_OR_RETURN(std::unique_ptr<Database> loaded,
                                LoadDatabaseSnapshot(args[1]));
      db_ = std::move(loaded);
      std::printf("loaded snapshot (t=%s); re-attach fungi as needed\n",
                  FormatDuration(db_->Now()).c_str());
      return Status::OK();
    }
    return Status::InvalidArgument("unknown command " + cmd +
                                   " (try \\help)");
  }

  Status Attach(const std::vector<std::string>& args) {
    if (args.size() < 4 || args.size() > 5) {
      return Status::InvalidArgument(
          "usage: \\attach <fungus> <table> <period> [arg]");
    }
    const std::string& table = args[2];
    FUNGUSDB_ASSIGN_OR_RETURN(Duration period, ParseDuration(args[3]));
    std::optional<std::string> arg;
    if (args.size() == 5) arg = args[4];
    FUNGUSDB_ASSIGN_OR_RETURN(
        std::unique_ptr<Fungus> fungus,
        MakeFungusFromSpec(args[1], arg, db_->Now()));
    const std::string description = fungus->Describe();
    FUNGUSDB_RETURN_IF_ERROR(
        db_->AttachFungus(table, std::move(fungus), period).status());
    std::printf("attached %s to %s every %s\n", description.c_str(),
                table.c_str(), FormatDuration(period).c_str());
    return Status::OK();
  }

  static Status WriteTextFile(const std::string& path,
                              const std::string& text) {
    std::ofstream file(path, std::ios::trunc);
    if (!file) return Status::Internal("cannot open " + path);
    file << text;
    file.flush();
    if (!file) return Status::Internal("short write to " + path);
    std::printf("wrote %zu bytes to %s\n", text.size(), path.c_str());
    return Status::OK();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<server::Client> remote_;
  int exit_code_ = 0;
};

}  // namespace
}  // namespace fungusdb

int main(int argc, char** argv) {
  std::string connect_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_spec = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--connect host:port]\n", argv[0]);
      return 2;
    }
  }
  if (!connect_spec.empty()) {
    auto client = fungusdb::server::Client::ConnectSpec(connect_spec);
    if (!client.ok()) {
      std::fprintf(stderr, "fungusql: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "connected to %s\n", connect_spec.c_str());
    fungusdb::Shell shell(std::move(client).value());
    return shell.Run();
  }
  fungusdb::Shell shell;
  return shell.Run();
}
