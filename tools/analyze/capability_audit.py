#!/usr/bin/env python3
"""FungusDB capability audit — the Python half of the concurrency
contract (the compile-time half is Clang Thread Safety Analysis over
common/thread_annotations.h; see DESIGN.md §13).

Clang's analysis checks that annotated code is used correctly, but it
cannot notice annotations that are *missing*, and it cannot check the
contracts that are not lock-shaped. This audit carries both halves:

  guarded-by      every class owning a Mutex must cover each mutable
                  data member with FUNGUS_GUARDED_BY(...) or a justified
                  entry in GUARDED_BY_ALLOWLIST — so new state cannot
                  silently join a locked class unguarded.
  raw-mutex       std::mutex / std::shared_mutex / std::condition_variable
                  / std::lock_guard / std::unique_lock / std::scoped_lock
                  appear only inside src/common/mutex.h. A raw mutex is
                  invisible to the thread safety analysis, so every
                  acquisition through one is a hole in the contract.
  no-tsa-escape   FUNGUS_NO_THREAD_SAFETY_ANALYSIS only in the files
                  that implement locking primitives (core/epoch.*) —
                  never as a way to silence a real finding.
  pin-attrs       EpochManager::PinRead()/BeginWrite() keep [[nodiscard]]
                  and their ACQUIRE attributes, so dropped pins and
                  untracked acquisitions stay compile-visible.
  apply-phase     shard-state mutators (Shard::SetFreshness /
                  DecayFreshness / Kill / TryFoldUniformDecay /
                  FreezeColdSegments, marked
                  FUNGUS_REQUIRES_APPLY_PHASE in shard.h) may only be
                  called from the apply phase: storage/table.cc,
                  fungus/scheduler.cc, verify/corruptor.cc. Clang TSA
                  cannot express this (the capability is "being the
                  apply phase", not a nameable lock), so the audit does.
  marker          the FUNGUS_REQUIRES_APPLY_PHASE markers themselves
                  must stay on the Shard mutators listed above.

Usage: tools/analyze/capability_audit.py [repo-root]
Exits 0 when clean, 1 with one "file:line: rule: message" per finding.
"""

import pathlib
import re
import sys

CXX_SUFFIXES = {".h", ".cc", ".cpp"}

# Members of mutex-owning classes that are deliberately NOT guarded.
# Keyed "file#Class::member"; every entry needs a justification here —
# an entry without one is a review comment waiting to happen.
GUARDED_BY_ALLOWLIST = {
    # Spawned in the constructor, joined in the destructor; no worker
    # touches the vector itself.
    "src/common/thread_pool.h#ThreadPool::workers_",
    # Coordinator-thread bookkeeping: written only inside ParallelFor
    # (single coordinator by contract), read between calls.
    "src/common/thread_pool.h#ThreadPool::barrier_wait_micros_",
    "src/common/thread_pool.h#ThreadPool::tasks_dispatched_",
    # Set once at Database construction, before any concurrency exists.
    "src/core/epoch.h#EpochManager::metrics_",
    # Server lifecycle state: written in the constructor / Start()
    # before the worker threads that read it are spawned, and torn down
    # in Stop() after every one of them is joined. The spawn/join edges
    # order it; stop_mu_ guards only the started/stopped handshake.
    "src/server/server.h#Server::db_",
    "src/server/server.h#Server::options_",
    "src/server/server.h#Server::listener_",
    "src/server/server.h#Server::port_",
    "src/server/server.h#Server::acceptor_",
    "src/server/server.h#Server::executor_",
    "src/server/server.h#Server::num_read_workers_",
    "src/server/server.h#Server::sessions_",
    "src/server/server.h#Server::read_threads_",
    # Internally synchronized (RequestQueue owns its own Mutex).
    "src/server/server.h#Server::queue_",
    "src/server/server.h#Server::read_queue_",
}

# The only files allowed to switch the thread safety analysis off: the
# epoch capability's own implementation lies to the analysis by design
# (condvar waits release/reacquire invisibly; pins move).
NO_TSA_ALLOWLIST = {
    "src/common/thread_annotations.h",  # the macro's own definition
    "src/core/epoch.h",
    "src/core/epoch.cc",
}

RAW_MUTEX_ALLOWLIST = {
    "src/common/mutex.h",  # the annotated wrapper itself
}

APPLY_PHASE_ALLOWLIST = {
    "src/storage/shard.h",       # the declarations themselves
    "src/storage/table.cc",      # coordinator single-row path
    "src/fungus/scheduler.cc",   # parallel apply phase
    "src/verify/corruptor.cc",   # test-only corruption seeder
}

SHARD_MUTATORS = ("SetFreshness", "DecayFreshness", "Kill",
                  "TryFoldUniformDecay", "FreezeColdSegments")

RE_RAW_MUTEX = re.compile(
    r"std\s*::\s*(?:mutex|shared_mutex|recursive_mutex|timed_mutex"
    r"|condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock)\b")
RE_NO_TSA = re.compile(r"FUNGUS_NO_THREAD_SAFETY_ANALYSIS")
RE_SHARD_CALL = re.compile(
    r"(?:\bShardFor\s*\([^)]*\)|\bshards?_?\s*\[[^\]]*\]"
    r"|\bshards?\s*\([^)]*\)|\b[Ss]hard\w*)\s*\.\s*(?:%s)\s*\(" %
    "|".join(SHARD_MUTATORS))
RE_CLASS_HEAD = re.compile(
    r"\b(?:class|struct)\s+(?:FUNGUS_CAPABILITY\s*\([^)]*\)\s+"
    r"|FUNGUS_SCOPED_CAPABILITY\s+)?(\w+)\s*(?::[^{;]*)?\{")
# A data member: type tokens (parens admit std::function<void()> and
# friends), a name with the repo's trailing-underscore convention, then
# optionally an annotation and/or an initializer. Method declarations
# fail the match: their trailing ')' / 'const' / attribute argument
# cannot follow the member-name group.
RE_MEMBER = re.compile(
    r"^(?P<decl>[\w:<>,*&~\s\[\]\.()]+?)\s+(?P<name>[a-z]\w*_)\s*"
    r"(?P<guard>FUNGUS_(?:PT_)?GUARDED_BY\s*\([^)]*\)\s*)?"
    r"(?:=[^;]*|\{[^;]*\})?$")
RE_MUTEX_MEMBER = re.compile(r"(?:^|\s)(?:mutable\s+)?Mutex\s+\w+_\s*$")
# Member types that synchronize themselves (or are the synchronization).
SELF_SYNC_TYPES = re.compile(
    r"\b(?:Mutex|CondVar|std\s*::\s*atomic)\b")


def scrub(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so rules never fire on prose or test data."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def class_bodies(code):
    """Yields (name, start_offset, body_text) for every class/struct
    with a braced body in scrubbed `code`, outermost first."""
    for match in RE_CLASS_HEAD.finditer(code):
        name = match.group(1)
        open_brace = match.end() - 1
        depth = 0
        for i in range(open_brace, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    yield name, open_brace + 1, code[open_brace + 1:i]
                    break


def depth1_statements(body):
    """Splits a class body into depth-1 statements (offset, text).

    Nested braces (inline method bodies, nested classes, brace
    initializers) ride along inside a statement; a '}' returning to
    depth 1 that is not followed by ';' ends an inline definition and
    discards the accumulated text.
    """
    statements = []
    depth = 0
    start = 0
    i = 0
    n = len(body)
    while i < n:
        c = body[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                j = i + 1
                while j < n and body[j] in " \t\n":
                    j += 1
                if j < n and body[j] == ";":
                    statements.append((start, body[start:j + 1]))
                    i = j
                start = i + 1
        elif c == ";" and depth == 0:
            statements.append((start, body[start:i + 1]))
            start = i + 1
        i += 1
    return statements


def audit_guarded_by(root, rel, raw, code, findings):
    for cls, body_off, body in class_bodies(code):
        has_mutex = any(
            RE_MUTEX_MEMBER.search(stmt.rstrip(";").split("=")[0])
            for _, stmt in depth1_statements(body))
        if not has_mutex:
            continue
        for off, stmt in depth1_statements(body):
            text = " ".join(stmt.rstrip(";").split())
            if not text or text.startswith(
                    ("public", "private", "protected", "class", "struct",
                     "enum", "using", "typedef", "friend", "template",
                     "static", "explicit", "virtual", "operator")):
                continue
            if "(" in text.split("FUNGUS_")[0] and not re.search(
                    r"[\w>]\s+\w+_\s*(?:FUNGUS_|=|\{|$)", text):
                continue  # method declaration, not a data member
            match = RE_MEMBER.match(text)
            if match is None:
                continue
            decl = match.group("decl")
            name = match.group("name")
            if SELF_SYNC_TYPES.search(decl):
                continue
            if re.match(r"(?:mutable\s+)?const\b", decl):
                continue
            if match.group("guard"):
                continue
            key = "%s#%s::%s" % (rel, cls, name)
            if key in GUARDED_BY_ALLOWLIST:
                continue
            lead = len(stmt) - len(stmt.lstrip())
            lineno = raw[:body_off + off + lead].count("\n") + 1
            findings.append(
                (rel, lineno, "guarded-by",
                 "%s::%s is a mutable member of a Mutex-owning class"
                 " without FUNGUS_GUARDED_BY; annotate it or add a"
                 " justified GUARDED_BY_ALLOWLIST entry" % (cls, name)))


def audit_file(root, path, findings):
    rel = path.relative_to(root).as_posix()
    raw = path.read_text(encoding="utf-8")
    code = scrub(raw)

    for lineno, line in enumerate(code.splitlines(), start=1):
        if rel not in RAW_MUTEX_ALLOWLIST and RE_RAW_MUTEX.search(line):
            findings.append(
                (rel, lineno, "raw-mutex",
                 "raw standard-library lock primitive is invisible to"
                 " the thread safety analysis; use fungusdb::Mutex /"
                 " MutexLock / CondVar (common/mutex.h)"))
        if rel not in NO_TSA_ALLOWLIST and RE_NO_TSA.search(line):
            findings.append(
                (rel, lineno, "no-tsa-escape",
                 "FUNGUS_NO_THREAD_SAFETY_ANALYSIS is reserved for the"
                 " locking-primitive implementation (core/epoch.*);"
                 " fix the annotation instead of switching the"
                 " analysis off"))
        if (rel not in APPLY_PHASE_ALLOWLIST
                and RE_SHARD_CALL.search(line)):
            findings.append(
                (rel, lineno, "apply-phase",
                 "shard-state mutation outside the apply phase (see"
                 " FUNGUS_REQUIRES_APPLY_PHASE in storage/shard.h)"))

    if rel.endswith(".h"):
        audit_guarded_by(root, rel, raw, code, findings)


def audit_apply_phase_markers(root, findings):
    shard = root / "src/storage/shard.h"
    if not shard.is_file():
        return  # fixture trees have no shard.h; the rule has no subject
    text = scrub(shard.read_text(encoding="utf-8"))
    for mutator in SHARD_MUTATORS:
        if not re.search(
                r"FUNGUS_REQUIRES_APPLY_PHASE[\s\w\[\]]*\s" + mutator +
                r"\s*\(", text):
            findings.append(("src/storage/shard.h", 1, "marker",
                             "Shard::%s lost its"
                             " FUNGUS_REQUIRES_APPLY_PHASE marker" %
                             mutator))


def audit_pin_attrs(root, findings):
    epoch = root / "src/core/epoch.h"
    if not epoch.is_file():
        return  # fixture trees have no epoch.h; the rule has no subject
    text = " ".join(scrub(epoch.read_text(encoding="utf-8")).split())
    for method, attr in (("PinRead", "FUNGUS_ACQUIRE_SHARED()"),
                         ("BeginWrite", "FUNGUS_ACQUIRE()")):
        pattern = r"\[\[nodiscard\]\]\s+\w+\s+%s\s*\(\s*\)\s*%s" % (
            method, re.escape(attr).replace(r"\(\)", r"\(\s*\)"))
        if not re.search(pattern, text):
            findings.append(
                ("src/core/epoch.h", 1, "pin-attrs",
                 "EpochManager::%s() must keep [[nodiscard]] and %s —"
                 " dropped pins and untracked acquisitions must stay"
                 " compile-visible" % (method, attr)))


def main():
    # Default to the repo root (two levels above tools/analyze/) so the
    # audit works from any cwd; an explicit root can still be passed.
    default_root = pathlib.Path(__file__).resolve().parent.parent.parent
    root = pathlib.Path(
        sys.argv[1]).resolve() if len(sys.argv) > 1 else default_root
    findings = []
    audit_apply_phase_markers(root, findings)
    audit_pin_attrs(root, findings)
    base = root / "src"
    if base.is_dir():
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                audit_file(root, path, findings)

    for rel, lineno, rule, message in findings:
        print("%s:%d: %s: %s" % (rel, lineno, rule, message))
    if findings:
        print("capability_audit: %d finding(s)" % len(findings))
        return 1
    print("capability_audit: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
