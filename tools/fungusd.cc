// fungusd — the FungusDB network daemon.
//
//   ./build/tools/fungusd --port 7464 --snapshot /var/lib/fungus.snap
//
// Serves the FungusDB wire protocol (see src/server/wire_format.h) over
// TCP. Clients connect with `fungusql --connect host:port` or the
// Client library. SIGTERM/SIGINT drain every admitted request, then
// snapshot (when --snapshot is given) and exit 0 — kill -TERM is the
// supported way to stop a production fungusd.
//
// Flags:
//   --host <addr>          bind address            (default 127.0.0.1)
//   --port <n>             TCP port; 0 = ephemeral (default 7464)
//   --port-file <path>     write the bound port here once listening
//                          (for scripts using --port 0)
//   --queue-capacity <n>   admitted-but-unexecuted request bound; a
//                          full queue answers E:2002 Overloaded
//   --max-connections <n>  simultaneous client connections
//   --read-workers <n>     read worker pool size; -1 = auto (hardware,
//                          capped at 8), 0 = writer-only execution
//   --snapshot <path>      load at boot when present; saved on shutdown
//
// Environment: FUNGUSDB_TRACE (any value but "0") enables the span
// tracer at boot — same as a client sending \trace on. Dump the ring
// any time with `fungusql --connect ...` and `\trace dump <file>`.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "fungusdb/common.h"
#include "fungusdb/database.h"
#include "fungusdb/persist.h"
#include "server/server.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host addr] [--port n] [--port-file path]\n"
               "          [--queue-capacity n] [--max-connections n]\n"
               "          [--read-workers n] [--snapshot path]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fungusdb::server::ServerOptions options;
  options.port = 7464;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--host" && has_value) {
      options.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--port-file" && has_value) {
      port_file = argv[++i];
    } else if (arg == "--queue-capacity" && has_value) {
      options.queue_capacity =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--max-connections" && has_value) {
      options.max_connections =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--read-workers" && has_value) {
      options.read_workers = std::atoi(argv[++i]);
    } else if (arg == "--snapshot" && has_value) {
      options.snapshot_path = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  if (const char* trace = std::getenv("FUNGUSDB_TRACE");
      trace != nullptr && std::strcmp(trace, "0") != 0) {
    fungusdb::Tracer::Global().Enable();
  }

  // Signals are handled synchronously via sigwait on the main thread;
  // block them BEFORE any server thread exists so the mask is
  // inherited and no worker ever takes the hit.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGTERM);
  sigaddset(&signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  std::unique_ptr<fungusdb::Database> db;
  if (!options.snapshot_path.empty() &&
      std::filesystem::exists(options.snapshot_path)) {
    auto loaded = fungusdb::LoadDatabaseSnapshot(options.snapshot_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "fungusd: cannot load snapshot %s: %s\n",
                   options.snapshot_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded).value();
    std::fprintf(stderr, "fungusd: restored snapshot %s\n",
                 options.snapshot_path.c_str());
  } else {
    db = std::make_unique<fungusdb::Database>();
  }

  const std::string snapshot_path = options.snapshot_path;
  fungusdb::server::Server server(std::move(db), std::move(options));
  const fungusdb::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "fungusd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "fungusd: listening on port %u\n", server.port());
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "fungusd: cannot write %s\n", port_file.c_str());
      server.Stop();
      return 1;
    }
  }

  int caught = 0;
  sigwait(&signals, &caught);
  std::fprintf(stderr, "fungusd: %s — draining\n", strsignal(caught));
  server.Stop();
  if (!snapshot_path.empty()) {
    std::fprintf(stderr, "fungusd: snapshot saved to %s\n",
                 snapshot_path.c_str());
  }
  std::fprintf(stderr, "fungusd: bye\n");
  return 0;
}
