// fungusd — the FungusDB network daemon.
//
//   ./build/tools/fungusd --port 7464 --snapshot /var/lib/fungus.snap
//
// Serves the FungusDB wire protocol (see src/server/wire_format.h) over
// TCP. Clients connect with `fungusql --connect host:port` or the
// Client library. SIGTERM/SIGINT drain every admitted request, then
// snapshot (when --snapshot is given) and exit 0 — kill -TERM is the
// supported way to stop a production fungusd.
//
// Flags:
//   --host <addr>          bind address            (default 127.0.0.1)
//   --port <n>             TCP port; 0 = ephemeral (default 7464)
//   --port-file <path>     write the bound port here once listening
//                          (for scripts using --port 0)
//   --queue-capacity <n>   admitted-but-unexecuted request bound; a
//                          full queue answers E:2002 Overloaded
//   --max-connections <n>  simultaneous client connections
//   --read-workers <n>     read worker pool size; -1 = auto (hardware,
//                          capped at 8), 0 = writer-only execution
//   --snapshot <path>      load at boot when present; saved on shutdown
//   --http-port <n>        mount the HTTP observability plane here
//                          (0 = ephemeral); omitted = no HTTP plane.
//                          Serves /metrics /healthz /readyz /rotz
//                          /storagez /tracez /varz (DESIGN.md §16)
//   --http-port-file <path> write the bound HTTP port here
//   --drain-grace-ms <n>   on SIGTERM, keep serving (with /readyz 503)
//                          this long before draining the wire queues —
//                          the window a load balancer needs to rotate
//                          the node out (default 0)
//
// Environment: FUNGUSDB_TRACE (any value but "0") enables the span
// tracer at boot — same as a client sending \trace on. Dump the ring
// any time with `fungusql --connect ...` and `\trace dump <file>`, or
// capture a live window over HTTP with GET /tracez?ms=N.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "fungusdb/common.h"
#include "fungusdb/database.h"
#include "fungusdb/persist.h"
#include "server/http_debug.h"
#include "server/server.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host addr] [--port n] [--port-file path]\n"
               "          [--queue-capacity n] [--max-connections n]\n"
               "          [--read-workers n] [--snapshot path]\n"
               "          [--http-port n] [--http-port-file path]\n"
               "          [--drain-grace-ms n]\n",
               argv0);
  return 2;
}

bool WritePortFile(const std::string& path, uint16_t port) {
  std::ofstream out(path, std::ios::trunc);
  out << port << "\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  fungusdb::server::ServerOptions options;
  options.port = 7464;
  std::string port_file;
  int http_port = -1;  // -1 = HTTP plane disabled
  std::string http_port_file;
  long long drain_grace_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--host" && has_value) {
      options.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--port-file" && has_value) {
      port_file = argv[++i];
    } else if (arg == "--queue-capacity" && has_value) {
      options.queue_capacity =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--max-connections" && has_value) {
      options.max_connections =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--read-workers" && has_value) {
      options.read_workers = std::atoi(argv[++i]);
    } else if (arg == "--snapshot" && has_value) {
      options.snapshot_path = argv[++i];
    } else if (arg == "--http-port" && has_value) {
      http_port = std::atoi(argv[++i]);
      if (http_port < 0 || http_port > 65535) return Usage(argv[0]);
    } else if (arg == "--http-port-file" && has_value) {
      http_port_file = argv[++i];
    } else if (arg == "--drain-grace-ms" && has_value) {
      drain_grace_ms = std::strtoll(argv[++i], nullptr, 10);
      if (drain_grace_ms < 0) return Usage(argv[0]);
    } else {
      return Usage(argv[0]);
    }
  }

  if (const char* trace = std::getenv("FUNGUSDB_TRACE");
      trace != nullptr && std::strcmp(trace, "0") != 0) {
    fungusdb::Tracer::Global().Enable();
  }

  // Signals are handled synchronously via sigwait on the main thread;
  // block them BEFORE any server thread exists so the mask is
  // inherited and no worker ever takes the hit.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGTERM);
  sigaddset(&signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  // The HTTP plane comes up BEFORE snapshot replay so /healthz answers
  // (and /readyz reports "starting") while a large snapshot loads.
  std::unique_ptr<fungusdb::server::HttpDebugServer> http;
  if (http_port >= 0) {
    fungusdb::server::HttpDebugOptions http_options;
    http_options.host = options.host;
    http_options.port = static_cast<uint16_t>(http_port);
    http_options.snapshot_path = options.snapshot_path;
    http = std::make_unique<fungusdb::server::HttpDebugServer>(http_options);
    const fungusdb::Status http_started = http->Start();
    if (!http_started.ok()) {
      std::fprintf(stderr, "fungusd: http: %s\n",
                   http_started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "fungusd: http plane on port %u\n", http->port());
    if (!http_port_file.empty() &&
        !WritePortFile(http_port_file, http->port())) {
      std::fprintf(stderr, "fungusd: cannot write %s\n",
                   http_port_file.c_str());
      return 1;
    }
  }

  std::unique_ptr<fungusdb::Database> db;
  if (!options.snapshot_path.empty() &&
      std::filesystem::exists(options.snapshot_path)) {
    auto loaded = fungusdb::LoadDatabaseSnapshot(options.snapshot_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "fungusd: cannot load snapshot %s: %s\n",
                   options.snapshot_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded).value();
    std::fprintf(stderr, "fungusd: restored snapshot %s\n",
                 options.snapshot_path.c_str());
  } else {
    db = std::make_unique<fungusdb::Database>();
  }

  const std::string snapshot_path = options.snapshot_path;
  fungusdb::server::Server server(std::move(db), std::move(options));
  const fungusdb::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "fungusd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "fungusd: listening on port %u\n", server.port());
  if (!port_file.empty() && !WritePortFile(port_file, server.port())) {
    std::fprintf(stderr, "fungusd: cannot write %s\n", port_file.c_str());
    server.Stop();
    return 1;
  }
  if (http != nullptr) {
    http->SetDatabase(&server.database());
    http->SetReadiness(
        fungusdb::server::HttpDebugServer::Readiness::kReady);
  }

  int caught = 0;
  sigwait(&signals, &caught);
  std::fprintf(stderr, "fungusd: %s — draining\n", strsignal(caught));
  if (http != nullptr) {
    // Flip /readyz to 503 first, then hold the grace window so load
    // balancers rotate the node out while it still answers cleanly.
    http->SetReadiness(
        fungusdb::server::HttpDebugServer::Readiness::kDraining);
    if (drain_grace_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(drain_grace_ms));
    }
  }
  server.Stop();
  if (http != nullptr) http->Stop();
  if (!snapshot_path.empty()) {
    std::fprintf(stderr, "fungusd: snapshot saved to %s\n",
                 snapshot_path.c_str());
  }
  std::fprintf(stderr, "fungusd: bye\n");
  return 0;
}
