// funguscheck — fsck for FungusDB files on disk.
//
//   funguscheck snapshot <file>              audit a snapshot: load it and
//                                            run the full invariant checker
//   funguscheck journal <file>               audit a journal: count intact
//                                            entries, report a torn tail
//   funguscheck replay <snapshot> <journal>  verify that replaying the
//                                            journal reproduces the snapshot
//   funguscheck corrupt <file> <kind> <n>    damage a file on purpose;
//                                            kind: truncate | flip | garbage
//   funguscheck mkcorpus <dir>               write fuzz seed corpora under
//                                            <dir>/{query,journal,csv,frame}
//
// Exits 0 when the audited files are clean, 1 on any violation or torn
// tail, 2 on usage errors or unreadable files.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "fungusdb/database.h"
#include "fungusdb/persist.h"
#include "persist/fsck.h"
#include "server/wire_format.h"

namespace fungusdb {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: funguscheck snapshot <file>\n"
               "       funguscheck journal <file>\n"
               "       funguscheck replay <snapshot> <journal>\n"
               "       funguscheck corrupt <file> truncate|flip|garbage <n>\n"
               "       funguscheck mkcorpus <dir>\n");
  return 2;
}

int CheckSnapshot(const std::string& path) {
  Result<SnapshotAudit> audit = AuditSnapshotFile(path);
  if (!audit.ok()) {
    std::fprintf(stderr, "funguscheck: %s\n",
                 audit.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", audit.value().ToString().c_str());
  return audit.value().fsck.ok() ? 0 : 1;
}

int CheckJournal(const std::string& path) {
  Result<JournalAudit> audit = AuditJournalFile(path);
  if (!audit.ok()) {
    std::fprintf(stderr, "funguscheck: %s\n",
                 audit.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", audit.value().ToString().c_str());
  return audit.value().truncated ? 1 : 0;
}

int CheckReplay(const std::string& snapshot_path,
                const std::string& journal_path) {
  Result<verify::Report> report =
      AuditReplayEquivalence(snapshot_path, journal_path);
  if (!report.ok()) {
    std::fprintf(stderr, "funguscheck: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report.value().ToString().c_str());
  return report.value().ok() ? 0 : 1;
}

int Corrupt(const std::string& path, const std::string& kind_name,
            const std::string& param_str) {
  FileCorruption kind;
  if (kind_name == "truncate") {
    kind = FileCorruption::kTruncateTail;
  } else if (kind_name == "flip") {
    kind = FileCorruption::kFlipByte;
  } else if (kind_name == "garbage") {
    kind = FileCorruption::kAppendGarbage;
  } else {
    return Usage();
  }
  char* end = nullptr;
  const uint64_t param = std::strtoull(param_str.c_str(), &end, 10);
  if (end == param_str.c_str() || *end != '\0') return Usage();
  Status status = SeedFileCorruption(path, kind, param);
  if (!status.ok()) {
    std::fprintf(stderr, "funguscheck: %s\n", status.ToString().c_str());
    return 2;
  }
  std::printf("corrupted %s (%s %llu)\n", path.c_str(), kind_name.c_str(),
              static_cast<unsigned long long>(param));
  return 0;
}

Status WriteFile(const std::filesystem::path& path,
                 const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path.string());
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::Internal("short write to " + path.string());
  return Status::OK();
}

Status ReadFile(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path.string());
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

/// Seed corpora for the three fuzz harnesses: syntactically interesting
/// SQL, a real journal produced through the journal writer, and small
/// CSV documents covering quoting and type edge cases.
Status MakeCorpus(const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path root(dir);
  std::error_code ec;
  for (const char* sub : {"query", "journal", "csv", "frame"}) {
    fs::create_directories(root / sub, ec);
    if (ec) return Status::Internal("cannot create " + (root / sub).string());
  }

  const char* queries[] = {
      "SELECT count(*) FROM t",
      "SELECT a, b FROM t WHERE __freshness < 0.25 LIMIT 10",
      "CONSUME SELECT * FROM t WHERE a >= 3 AND b != 'x'",
      "SELECT avg(a) AS m, min(b) FROM t GROUP BY c ORDER BY m DESC",
      "SELECT * FROM t WHERE ts > 100 OR NOT (a = 1)",
      "COOK histogram(a) AS h FROM t",
  };
  int i = 0;
  for (const char* q : queries) {
    FUNGUSDB_RETURN_IF_ERROR(
        WriteFile(root / "query" / ("q" + std::to_string(i++) + ".sql"),
                  q));
  }

  // A genuine journal, produced through the writer so the frames carry
  // correct checksums — the fuzzer mutates from a valid starting point.
  const fs::path journal_path = root / "journal" / "seed.journal";
  fs::remove(journal_path, ec);
  {
    FUNGUSDB_ASSIGN_OR_RETURN(std::unique_ptr<JournaledDatabase> db,
                              JournaledDatabase::Open(
                                  DatabaseOptions{}, journal_path.string()));
    Schema schema = Schema::Make({{"a", DataType::kInt64, false},
                                  {"b", DataType::kString, true}})
                        .value();
    FUNGUSDB_RETURN_IF_ERROR(
        db->CreateTable("t", schema).status());
    FUNGUSDB_RETURN_IF_ERROR(
        db->Insert("t", {Value::Int64(1), Value::String("one")}).status());
    FUNGUSDB_RETURN_IF_ERROR(
        db->Insert("t", {Value::Int64(2), Value::Null()}).status());
    FUNGUSDB_RETURN_IF_ERROR(db->AdvanceTime(3600).status());
    FUNGUSDB_RETURN_IF_ERROR(
        db->ExecuteSql("CONSUME SELECT * FROM t WHERE a = 1").status());
    FUNGUSDB_RETURN_IF_ERROR(db->Sync());
  }
  // Also seed a truncated variant so the torn-tail path is in-corpus.
  std::string journal_bytes;
  FUNGUSDB_RETURN_IF_ERROR(ReadFile(journal_path, &journal_bytes));
  FUNGUSDB_RETURN_IF_ERROR(
      WriteFile(root / "journal" / "torn.journal",
                journal_bytes.substr(0, journal_bytes.size() / 2)));

  const char* csvs[] = {
      "a,b\n1,one\n2,two\n",
      "a,b\n1,\"quoted, comma\"\n2,\"embedded \"\"quote\"\"\"\n",
      "a,b\n-9223372036854775808,\n",
      "a,b\n1,unterminated \"quote\n",
  };
  i = 0;
  for (const char* c : csvs) {
    FUNGUSDB_RETURN_IF_ERROR(
        WriteFile(root / "csv" / ("c" + std::to_string(i++) + ".csv"), c));
  }

  // Wire-protocol seeds for fuzz_frame: genuine payloads produced by
  // the real codecs, so mutation starts from the valid region.
  {
    server::StatementRequest request;
    request.request_id = 7;
    request.deadline_micros = 250000;
    request.statements = {"SELECT count(*) FROM t", "\\health"};
    FUNGUSDB_RETURN_IF_ERROR(
        WriteFile(root / "frame" / "request.bin",
                  server::EncodeStatementRequest(request)));

    server::StatementResponse response;
    response.request_id = 7;
    ResultSet rs;
    rs.column_names = {"n"};
    rs.rows.push_back({Value::Int64(42)});
    rs.stats.rows_scanned = 42;
    response.results.push_back(std::move(rs));
    response.results.push_back(
        Status::TableNotFound("no table named 't'"));
    FUNGUSDB_RETURN_IF_ERROR(
        WriteFile(root / "frame" / "response.bin",
                  server::EncodeStatementResponse(response)));

    FUNGUSDB_RETURN_IF_ERROR(
        WriteFile(root / "frame" / "framed.bin",
                  server::EncodeFrame(
                      server::FrameType::kStatementRequest,
                      server::EncodeStatementRequest(request))));
  }
  std::printf("wrote seed corpora under %s/{query,journal,csv,frame}\n",
              dir.c_str());
  return Status::OK();
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "snapshot" && argc == 3) return CheckSnapshot(argv[2]);
  if (cmd == "journal" && argc == 3) return CheckJournal(argv[2]);
  if (cmd == "replay" && argc == 4) return CheckReplay(argv[2], argv[3]);
  if (cmd == "corrupt" && argc == 5) {
    return Corrupt(argv[2], argv[3], argv[4]);
  }
  if (cmd == "mkcorpus" && argc == 3) {
    Status status = MakeCorpus(argv[2]);
    if (!status.ok()) {
      std::fprintf(stderr, "funguscheck: %s\n", status.ToString().c_str());
      return 2;
    }
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace fungusdb

int main(int argc, char** argv) { return fungusdb::Main(argc, argv); }
