// Experiment SRV — fungusd front-end throughput vs client count.
//
// Claim (concurrency PR): with the split execution model, read-only
// statements run on a pool of read workers against epoch-pinned
// snapshots, so read throughput scales with the client count instead
// of being bounded by the single writer. Mutating statements still
// funnel through the one executor that owns the total order, so the
// mixed workload shows the old flat profile with overload answered as
// typed E:2002 refusals rather than latency collapse.
//
// Setup: per workload (read_only, mixed) and client count
// (1/4/16/64/256), a fresh in-process Server on an ephemeral loopback
// port. read_only runs filtered counts over a pre-populated table;
// mixed runs the historical 3:1 insert:select mix. Each client drives
// its own connection in lockstep request/response. Reported:
// wall-clock statements/sec, p50 and p99 per-statement worker latency
// (from the server's own histogram), and overload refusals.
//
// Scrape A/B (observability PR): the same 16-client read_only workload
// twice — once bare, once with the HTTP observability plane mounted
// and a client scraping GET /metrics at 1 Hz — to show the plane costs
// read throughput nothing material (CI bar: scrape_on/scrape_off
// >= 0.85; target is within 2%).

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/http_debug.h"
#include "server/server.h"

namespace fungusdb {
namespace {

constexpr int kStatementsPerClient = 200;
constexpr int kClientCounts[] = {1, 4, 16, 64, 256};
constexpr int kPrepopulatedRows = 2000;

struct Workload {
  const char* name;
  bool read_only;
};

constexpr Workload kWorkloads[] = {
    {"read_only", true},
    {"mixed", false},
};

std::string StatementFor(const Workload& workload, int client, int i) {
  if (workload.read_only) {
    // Filtered counts with a rotating predicate: every statement scans,
    // no two consecutive statements are byte-identical.
    return "SELECT count(*) AS n FROM t WHERE a < " +
           std::to_string((client * 37 + i * 13) % kPrepopulatedRows);
  }
  return i % 4 == 3 ? "SELECT count(*) AS n FROM t"
                    : "\\insert t " + std::to_string(client * 1000 + i);
}

/// One full GET /metrics scrape over a fresh connection, drained to
/// EOF like a real Prometheus client.
void ScrapeOnce(uint16_t http_port) {
  Result<server::UniqueFd> fd = server::ConnectTcp("127.0.0.1", http_port);
  if (!fd.ok()) return;
  const Status sent = server::WriteAll(
      fd.value().get(), "GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n");
  (void)sent;
  char buffer[4096];
  while (::recv(fd.value().get(), buffer, sizeof(buffer), 0) > 0) {
  }
}

/// The 16-client read_only workload, long enough that a 1 Hz scraper
/// lands several full scrapes inside the measured window.
void RunScrapeLeg(bool with_scrape, bench::TablePrinter& printer) {
  constexpr int kClients = 16;
  constexpr int kStatements = 1500;
  const Workload& workload = kWorkloads[0];  // read_only

  server::ServerOptions options;
  options.queue_capacity = 2 * kClients + 8;
  options.max_connections = kClients + 8;
  auto srv = std::make_unique<server::Server>(std::make_unique<Database>(),
                                              options);
  FUNGUSDB_CHECK_OK(srv->database()
                        .CreateTable("t", Schema::Parse("(a int64)").value())
                        .status());
  for (int i = 0; i < kPrepopulatedRows; ++i) {
    FUNGUSDB_CHECK_OK(srv->database().Insert("t", {Value::Int64(i)}).status());
  }
  FUNGUSDB_CHECK_OK(srv->Start());

  server::HttpDebugServer http;
  std::atomic<bool> stop{false};
  std::thread scraper;
  if (with_scrape) {
    FUNGUSDB_CHECK_OK(http.Start());
    http.SetDatabase(&srv->database());
    http.SetReadiness(server::HttpDebugServer::Readiness::kReady);
    scraper = std::thread([&http, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        ScrapeOnce(http.port());
        for (int i = 0; i < 10 && !stop.load(std::memory_order_acquire);
             ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    });
  }

  std::mutex mu;
  uint64_t completed = 0;
  bench::Stopwatch clock;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      server::Client client =
          server::Client::Connect("127.0.0.1", srv->port()).value();
      uint64_t my_completed = 0;
      for (int i = 0; i < kStatements; ++i) {
        if (client.ExecuteOne(StatementFor(workload, c, i)).ok()) {
          ++my_completed;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      completed += my_completed;
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = clock.ElapsedMicros() / 1e6;

  if (with_scrape) {
    stop.store(true, std::memory_order_release);
    scraper.join();
    http.Stop();
  }

  const HistogramMetric* latency = srv->database().metrics().FindHistogram(
      "fungusdb.server.statement_latency_us");
  const double p50_us = latency != nullptr ? latency->Quantile(0.5) : 0.0;
  const double p99_us = latency != nullptr ? latency->Quantile(0.99) : 0.0;
  srv->Stop();

  const uint64_t total = static_cast<uint64_t>(kClients) * kStatements;
  printer.PrintRow({with_scrape ? "scrape_on" : "scrape_off",
                    bench::Fmt(static_cast<uint64_t>(kClients)),
                    bench::Fmt(total), bench::Fmt(seconds, 3),
                    bench::Fmt(completed / seconds, 0),
                    bench::Fmt(p50_us, 1), bench::Fmt(p99_us, 1),
                    bench::Fmt(uint64_t{0})});
}

void Run() {
  bench::Banner("SRV", "server throughput: statements/sec vs client count");
  bench::JsonReport report("server");

  bench::TablePrinter printer(
      {"workload", "clients", "statements", "seconds", "stmts_per_s",
       "latency_p50_us", "latency_p99_us", "overloaded"},
      16);
  printer.MirrorTo(&report);
  printer.PrintHeader();

  for (const Workload& workload : kWorkloads) {
    for (const int num_clients : kClientCounts) {
      server::ServerOptions options;
      options.queue_capacity = 2 * static_cast<size_t>(num_clients) + 8;
      options.max_connections = static_cast<size_t>(num_clients) + 8;
      auto srv = std::make_unique<server::Server>(
          std::make_unique<Database>(), options);
      FUNGUSDB_CHECK_OK(
          srv->database()
              .CreateTable("t", Schema::Parse("(a int64)").value())
              .status());
      if (workload.read_only) {
        for (int i = 0; i < kPrepopulatedRows; ++i) {
          FUNGUSDB_CHECK_OK(
              srv->database().Insert("t", {Value::Int64(i)}).status());
        }
      }
      FUNGUSDB_CHECK_OK(srv->Start());

      std::mutex mu;
      uint64_t completed = 0;
      uint64_t overloaded = 0;

      bench::Stopwatch clock;
      std::vector<std::thread> clients;
      clients.reserve(num_clients);
      for (int c = 0; c < num_clients; ++c) {
        clients.emplace_back([&, c] {
          server::Client client =
              server::Client::Connect("127.0.0.1", srv->port()).value();
          uint64_t my_completed = 0;
          uint64_t my_overloaded = 0;
          for (int i = 0; i < kStatementsPerClient; ++i) {
            const Result<ResultSet> result =
                client.ExecuteOne(StatementFor(workload, c, i));
            if (result.ok()) {
              ++my_completed;
            } else if (result.status().error_code() ==
                       ErrorCode::kOverloaded) {
              ++my_overloaded;
            }
          }
          std::lock_guard<std::mutex> lock(mu);
          completed += my_completed;
          overloaded += my_overloaded;
        });
      }
      for (std::thread& t : clients) t.join();
      const double seconds = clock.ElapsedMicros() / 1e6;

      const HistogramMetric* latency =
          srv->database().metrics().FindHistogram(
              "fungusdb.server.statement_latency_us");
      const double p50_us = latency != nullptr ? latency->Quantile(0.5) : 0.0;
      const double p99_us =
          latency != nullptr ? latency->Quantile(0.99) : 0.0;
      srv->Stop();

      const uint64_t total =
          static_cast<uint64_t>(num_clients) * kStatementsPerClient;
      printer.PrintRow({workload.name,
                        bench::Fmt(static_cast<uint64_t>(num_clients)),
                        bench::Fmt(total), bench::Fmt(seconds, 3),
                        bench::Fmt(completed / seconds, 0),
                        bench::Fmt(p50_us, 1), bench::Fmt(p99_us, 1),
                        bench::Fmt(overloaded)});
    }
  }

  // Scrape A/B: same read path, with and without a live 1 Hz
  // Prometheus scraper against the mounted HTTP plane.
  RunScrapeLeg(/*with_scrape=*/false, printer);
  RunScrapeLeg(/*with_scrape=*/true, printer);

  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
