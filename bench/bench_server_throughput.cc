// Experiment SRV — fungusd front-end throughput vs client count.
//
// Claim (server PR): the sessionized front-end keeps the database
// single-threaded (one executor) while N concurrent clients drive it
// over TCP; throughput is bounded by the executor, so statements/sec
// should hold roughly flat as the client count grows, with overload
// answered as typed E:2002 refusals rather than latency collapse or
// memory growth.
//
// Setup: per client count (1/4/16/64), a fresh in-process Server on an
// ephemeral loopback port and one table. Each client thread runs a
// 3:1 insert:select mix over its own connection, lockstep
// request/response. Reported: wall-clock statements/sec, mean and p99
// per-statement executor latency (from the server's own histogram),
// and the count of overload refusals (0 at the default queue depth).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/server.h"

namespace fungusdb {
namespace {

constexpr int kStatementsPerClient = 200;
constexpr int kClientCounts[] = {1, 4, 16, 64};

void Run() {
  bench::Banner("SRV", "server throughput: statements/sec vs client count");
  bench::JsonReport report("server");

  bench::TablePrinter printer({"clients", "statements", "seconds",
                               "stmts_per_s", "latency_mean_us",
                               "latency_p99_us", "overloaded"},
                              16);
  printer.MirrorTo(&report);
  printer.PrintHeader();

  for (const int num_clients : kClientCounts) {
    server::ServerOptions options;
    options.queue_capacity = 2 * static_cast<size_t>(num_clients) + 8;
    auto srv = std::make_unique<server::Server>(
        std::make_unique<Database>(), options);
    FUNGUSDB_CHECK_OK(srv->Start());
    FUNGUSDB_CHECK_OK(
        srv->database()
            .CreateTable("t", Schema::Parse("(a int64)").value())
            .status());

    std::mutex mu;
    uint64_t completed = 0;
    uint64_t overloaded = 0;

    bench::Stopwatch clock;
    std::vector<std::thread> clients;
    clients.reserve(num_clients);
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        server::Client client =
            server::Client::Connect("127.0.0.1", srv->port()).value();
        uint64_t my_completed = 0;
        uint64_t my_overloaded = 0;
        for (int i = 0; i < kStatementsPerClient; ++i) {
          const std::string statement =
              i % 4 == 3 ? "SELECT count(*) AS n FROM t"
                         : "\\insert t " + std::to_string(c * 1000 + i);
          const Result<ResultSet> result = client.ExecuteOne(statement);
          if (result.ok()) {
            ++my_completed;
          } else if (result.status().error_code() ==
                     ErrorCode::kOverloaded) {
            ++my_overloaded;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        completed += my_completed;
        overloaded += my_overloaded;
      });
    }
    for (std::thread& t : clients) t.join();
    const double seconds = clock.ElapsedMicros() / 1e6;

    const HistogramMetric* latency = srv->database().metrics().FindHistogram(
        "fungusdb.server.statement_latency_us");
    const double mean_us = latency != nullptr ? latency->Mean() : 0.0;
    const double p99_us =
        latency != nullptr ? latency->Quantile(0.99) : 0.0;
    srv->Stop();

    const uint64_t total =
        static_cast<uint64_t>(num_clients) * kStatementsPerClient;
    printer.PrintRow({bench::Fmt(static_cast<uint64_t>(num_clients)),
                      bench::Fmt(total), bench::Fmt(seconds, 3),
                      bench::Fmt(completed / seconds, 0),
                      bench::Fmt(mean_us, 1), bench::Fmt(p99_us, 1),
                      bench::Fmt(overloaded)});
  }

  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
