// Experiment T6 — shard-per-core scaling: morsel scans and decay ticks.
//
// Claim (PR 1, sharded kernel): with a table partitioned into shards,
// scan throughput and decay-tick cost scale with the thread count while
// decay outcomes stay byte-identical — the shard count fixes the
// algorithm, threads only change the execution schedule.
//
// Setup: a 1M-row, 8-shard IoT table per thread count (1/2/4/8). Each
// run measures (a) fast-path scan throughput over repeated range
// queries, (b) wall-clock cost of 20 EGI decay ticks, and (c) a
// checksum of the surviving (row, freshness) pairs. The checksum column
// must be identical down the sweep; speedups depend on the host's
// actual core count.
//
// A second sweep (d) pits lazy epoch decay against eager row walks on a
// table whose segments are all frozen (uniform retention decrement,
// no deaths): with lazy_decay on, every tick folds one pending
// decrement per segment — O(segments) — instead of rewriting every
// row, and must come out >= 10x cheaper per tick.

#include <cstdint>
#include <memory>

#include "bench/bench_util.h"
#include "core/database.h"
#include "fungus/egi_fungus.h"
#include "fungus/retention_fungus.h"
#include "summary/hashing.h"
#include "workload/iot_workload.h"

namespace fungusdb {
namespace {

constexpr uint64_t kRows = 1000000;
constexpr int kScanRepetitions = 10;
constexpr int kDecayTicks = 20;

const char* kScanQuery =
    "SELECT count(*) AS n FROM readings WHERE temp > 21";

/// Order-sensitive digest of the live extent: row ids and freshness
/// bits, chained through the repo's 64-bit hash.
uint64_t LiveChecksum(const Table& t) {
  uint64_t h = 0;
  t.ForEachLive([&](RowId row) {
    const double f = t.Freshness(row);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(f));
    __builtin_memcpy(&bits, &f, sizeof(bits));
    const uint64_t pair[2] = {row, bits};
    h = HashBytes(pair, sizeof(pair), /*seed=*/h);
  });
  return h;
}

void Run() {
  bench::Banner("T6", "parallel scaling: morsel scans + sharded decay");
  bench::JsonReport report("T6");

  bench::TablePrinter printer({"threads", "scan_rows_per_s", "scan_speedup",
                               "decay_ms", "decay_speedup", "live_rows",
                               "checksum"},
                              16);
  printer.MirrorTo(&report);
  printer.PrintHeader();

  double base_scan = 0.0;
  double base_decay = 0.0;
  uint64_t base_checksum = 0;
  bool checksums_agree = true;

  for (size_t threads : {1, 2, 4, 8}) {
    DatabaseOptions opts;
    opts.num_threads = threads;
    Database db(opts);
    IotWorkload workload(IotWorkload::Params{});
    TableOptions topts;
    topts.rows_per_segment = 4096;  // ~244 morsels over 8 shards
    topts.num_shards = 8;
    db.CreateTable("readings", workload.schema(), topts).value();
    db.Ingest("readings", workload, kRows).value();
    const TableHandle t = db.GetTable("readings").value();

    // (a) Morsel-driven scan throughput.
    db.ExecuteSql(kScanQuery).value();  // warm-up
    uint64_t scanned = 0;
    bench::Stopwatch scan_watch;
    for (int rep = 0; rep < kScanRepetitions; ++rep) {
      ResultSet rs = db.ExecuteSql(kScanQuery).value();
      scanned += rs.stats.rows_scanned;
    }
    const double scan_rows_per_s =
        static_cast<double>(scanned) / (scan_watch.ElapsedMicros() / 1e6);

    // (b) Parallel decay ticks (EGI: the heaviest fungus — RNG seeding,
    // cross-shard spread, per-row decay).
    EgiFungus::Params p;
    p.seeds_per_tick = 64.0;
    p.decay_step = 0.08;
    p.spread_probability = 0.9;
    db.AttachFungus("readings", std::make_unique<EgiFungus>(p), kSecond)
        .value();
    bench::Stopwatch decay_watch;
    db.AdvanceTime(kDecayTicks * kSecond).value();
    const double decay_ms = decay_watch.ElapsedMicros() / 1000.0;

    // (c) Outcome fingerprint — must match the single-thread run bit
    // for bit.
    const uint64_t checksum = LiveChecksum(t.table());
    if (threads == 1) {
      base_scan = scan_rows_per_s;
      base_decay = decay_ms;
      base_checksum = checksum;
    } else if (checksum != base_checksum) {
      checksums_agree = false;
    }

    char checksum_hex[19];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  static_cast<unsigned long long>(checksum));
    printer.PrintRow(
        {bench::Fmt(static_cast<uint64_t>(threads)),
         bench::Fmt(scan_rows_per_s, 0),
         bench::Fmt(scan_rows_per_s / base_scan, 2) + "x",
         bench::Fmt(decay_ms, 1),
         bench::Fmt(base_decay / decay_ms, 2) + "x",
         bench::Fmt(t.live_rows()), checksum_hex});
  }

  std::printf("\ndecay outcomes %s across thread counts%s\n",
              checksums_agree ? "IDENTICAL" : "DIVERGED",
              checksums_agree ? "" : " — determinism contract violated!");

  // (d) Lazy epoch decay vs eager row walks on an all-frozen table:
  // long-retention fungus, every row inserted at t=0, so after the
  // first (formula) tick every subsequent tick is a uniform decrement
  // fully covered by the zone map — the fold fast path.
  std::printf("\nlazy epoch decay: O(segments) ticks on a frozen table\n");
  bench::TablePrinter lazy_printer(
      {"decay_mode", "ticks", "tick_ms", "segments_folded",
       "tick_speedup"},
      16);
  lazy_printer.MirrorTo(&report);
  lazy_printer.PrintHeader();

  double eager_tick_ms = 0.0;
  double lazy_tick_ms = 0.0;
  for (const bool lazy : {false, true}) {
    DatabaseOptions opts;
    opts.num_threads = 4;
    Database db(opts);
    IotWorkload workload(IotWorkload::Params{});
    TableOptions topts;
    topts.rows_per_segment = 4096;
    topts.num_shards = 8;
    topts.lazy_decay = lazy;
    db.CreateTable("readings", workload.schema(), topts).value();
    db.Ingest("readings", workload, kRows).value();
    const TableHandle t = db.GetTable("readings").value();

    // Retention far beyond the bench horizon: ticks decrement freshness
    // uniformly and kill nothing, keeping every segment foldable.
    db.AttachFungus("readings",
                    std::make_unique<RetentionFungus>(1000 * kHour),
                    /*interval=*/kMinute)
        .value();
    // First tick runs the per-row formula pass in both modes.
    db.AdvanceTime(kMinute).value();

    bench::Stopwatch watch;
    db.AdvanceTime(kDecayTicks * kMinute).value();
    const double tick_ms =
        watch.ElapsedMicros() / 1000.0 / kDecayTicks;

    uint64_t folded = 0;
    if (const auto info = db.scheduler().StatsForTable(&t.table())) {
      folded = info->decay.segments_folded;
    }
    if (lazy) {
      lazy_tick_ms = tick_ms;
    } else {
      eager_tick_ms = tick_ms;
    }
    lazy_printer.PrintRow(
        {lazy ? "lazy" : "eager", bench::Fmt(uint64_t{kDecayTicks}),
         bench::Fmt(tick_ms, 3), bench::Fmt(folded),
         lazy ? bench::Fmt(eager_tick_ms / tick_ms, 1) + "x" : "1.0x"});
  }
  std::printf("\nlazy ticks are %.1fx cheaper than eager on the frozen "
              "table (bar: 10x)\n",
              eager_tick_ms / lazy_tick_ms);

  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
