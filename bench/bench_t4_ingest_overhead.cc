// Experiment T4 — cost of running the decay clock.
//
// Claim (paper §2): decay runs on "a periodic clock of T seconds" in the
// background of a live system, so it must be cheap relative to
// ingestion. We measure ingest throughput (wall-clock) with the clock
// off and at several virtual periods, plus the segment-size ablation
// from DESIGN.md §4 (reclamation granularity).
//
// Pacing: records arrive 1 virtual second apart; smaller decay periods
// mean more fungus ticks per ingested batch.

#include <memory>

#include "bench/bench_util.h"
#include "core/database.h"
#include "fungus/retention_fungus.h"
#include "workload/iot_workload.h"

namespace fungusdb {
namespace {

constexpr uint64_t kRecords = 100000;
constexpr Duration kInterArrival = kSecond;
constexpr Duration kRetention = 5000 * kSecond;  // ~5% of the stream live

double MeasureIngest(Duration decay_period, size_t rows_per_segment,
                     uint64_t* ticks_out) {
  Database db;
  IotWorkload workload(IotWorkload::Params{});
  TableOptions topts;
  topts.rows_per_segment = rows_per_segment;
  db.CreateTable("readings", workload.schema(), topts).value();
  if (decay_period > 0) {
    db.AttachFungus("readings",
                    std::make_unique<RetentionFungus>(kRetention),
                    decay_period)
        .value();
  }
  bench::Stopwatch watch;
  db.IngestPaced("readings", workload, kRecords, kInterArrival).value();
  const double us = watch.ElapsedMicros();
  *ticks_out = static_cast<uint64_t>(db.metrics().GetCounter("fungusdb.decay.ticks"));
  return static_cast<double>(kRecords) / (us / 1e6);
}

void Run() {
  bench::Banner("T4", "ingest throughput under the decay clock");
  bench::JsonReport report("T4");

  bench::TablePrinter printer({"decay_period", "segment_rows", "ticks",
                               "tuples_per_sec", "slowdown"},
                              15);
  printer.MirrorTo(&report);
  printer.PrintHeader();

  uint64_t ticks = 0;
  const double base = MeasureIngest(0, 4096, &ticks);
  printer.PrintRow({"off", "4096", "0", bench::Fmt(base, 0), "1.00x"});

  struct Case {
    const char* label;
    Duration period;
  };
  const Case cases[] = {{"2000s", 2000 * kSecond},
                        {"200s", 200 * kSecond},
                        {"20s", 20 * kSecond}};
  for (const Case& c : cases) {
    const double rate = MeasureIngest(c.period, 4096, &ticks);
    printer.PrintRow({c.label, "4096", bench::Fmt(ticks),
                      bench::Fmt(rate, 0),
                      bench::Fmt(base / rate, 2) + "x"});
  }

  std::printf("\nsegment-size ablation (decay period 200s)\n");
  for (size_t rows : {512, 4096, 32768}) {
    const double rate = MeasureIngest(200 * kSecond, rows, &ticks);
    printer.PrintRow({"200s", std::to_string(rows), bench::Fmt(ticks),
                      bench::Fmt(rate, 0),
                      bench::Fmt(base / rate, 2) + "x"});
  }
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
