// Experiment T1 — storage footprint over time under different fungi.
//
// Claim (paper §1): "Don't collect more rice than you can eat" — without
// decay the fridge grows without bound; with a fungus the extent reaches
// a bounded steady state.
//
// Workload: IoT stream, 10k tuples per virtual day for 30 days. The
// decay clock ticks every 2 hours. One table per fungus:
//   none            — the ever-growing fridge (baseline)
//   retention(7d)   — the paper's "old-fashioned" fungus
//   exponential     — half-life 3d, kill threshold 0.05
//   egi             — the paper's epidemic fungus
//
// Expected shape: `none` grows linearly to 300k tuples; every decay
// variant flattens out well below it.

#include <memory>

#include "bench/bench_util.h"
#include "core/database.h"
#include "core/internal_access.h"
#include "storage/encode/frozen.h"
#include "fungus/egi_fungus.h"
#include "fungus/exponential_fungus.h"
#include "fungus/retention_fungus.h"
#include "workload/iot_workload.h"

namespace fungusdb {
namespace {

constexpr int kDays = 30;
constexpr uint64_t kTuplesPerDay = 10000;
constexpr Duration kTickPeriod = 2 * kHour;

struct Variant {
  std::string label;
  std::unique_ptr<Database> db;
};

void Run() {
  bench::Banner("T1", "storage footprint over 30 virtual days");
  bench::JsonReport report("T1");

  std::vector<Variant> variants;
  auto add_variant = [&](const std::string& label,
                         std::unique_ptr<Fungus> fungus) {
    auto db = std::make_unique<Database>();
    TableOptions topts;
    topts.rows_per_segment = 1024;
    IotWorkload::Params wp;
    db->CreateTable("readings", IotWorkload(wp).schema(), topts).value();
    if (fungus != nullptr) {
      db->AttachFungus("readings", std::move(fungus), kTickPeriod).value();
    }
    variants.push_back({label, std::move(db)});
  };

  add_variant("none", nullptr);
  add_variant("retention", std::make_unique<RetentionFungus>(7 * kDay));
  add_variant("exponential",
              [] {
                ExponentialFungus::Params p =
                    ExponentialFungus::FromHalfLife(3 * kDay);
                p.kill_threshold = 0.05;
                return std::make_unique<ExponentialFungus>(p);
              }());
  add_variant("egi", [] {
    EgiFungus::Params p;
    p.seeds_per_tick = 8.0;
    p.decay_step = 0.34;
    p.spread_probability = 1.0;
    p.age_bias = 2.0;
    return std::make_unique<EgiFungus>(p);
  }());

  // One workload generator per variant so streams are identical.
  std::vector<std::unique_ptr<IotWorkload>> workloads;
  for (size_t i = 0; i < variants.size(); ++i) {
    workloads.push_back(
        std::make_unique<IotWorkload>(IotWorkload::Params{}));
  }

  bench::TablePrinter printer({"day", "fungus", "live_rows", "appended",
                               "memory_MiB", "segments"});
  printer.MirrorTo(&report);
  printer.PrintHeader();
  for (int day = 1; day <= kDays; ++day) {
    for (size_t i = 0; i < variants.size(); ++i) {
      Database& db = *variants[i].db;
      db.Ingest("readings", *workloads[i], kTuplesPerDay).value();
      db.AdvanceTime(kDay).value();
      if (day % 3 != 0) continue;
      const TableHandle t = db.GetTable("readings").value();
      printer.PrintRow(
          {std::to_string(day), variants[i].label,
           bench::Fmt(t.live_rows()), bench::Fmt(t.total_appended()),
           bench::Fmt(static_cast<double>(t.memory_bytes()) / (1 << 20)),
           bench::Fmt(static_cast<uint64_t>(t.num_segments()))});
    }
  }

  std::printf("\nsummary: final live rows (lower is a tighter fridge)\n");
  for (const Variant& v : variants) {
    const TableHandle t = v.db->GetTable("readings").value();
    std::printf("  %-12s live=%llu of %llu appended\n", v.label.c_str(),
                static_cast<unsigned long long>(t.live_rows()),
                static_cast<unsigned long long>(t.total_appended()));
  }

  // Cold-tier coda (PR 9): freeze every full segment and report the
  // per-column encoded footprint against its plain-tier cost. The day
  // table above is the capacity story; this is where the bytes went.
  std::printf("\ncold tier: per-column encoded footprint after "
              "freezing all full segments\n");
  bench::TablePrinter cold({"fungus", "column", "plain_bytes",
                            "encoded_bytes", "ratio"});
  cold.MirrorTo(&report);
  cold.PrintHeader();
  for (Variant& v : variants) {
    EpochManager::WriteGuard guard(v.db->epochs());
    Table* t =
        internal::DatabaseInternal::MutableTable(*v.db, "readings")
            .value();
    t->FreezeColdSegments(0);
    const size_t num_fields = t->schema().num_fields();
    std::vector<uint64_t> plain(num_fields, 0);
    std::vector<uint64_t> encoded(num_fields, 0);
    for (const auto& [seg_no, seg] : t->segment_index()) {
      if (!seg->is_frozen()) continue;
      const encode::FrozenSegment& fz = seg->frozen();
      for (size_t c = 0; c < num_fields && c < fz.columns.size(); ++c) {
        plain[c] += fz.columns[c].plain_bytes;
        encoded[c] += fz.columns[c].MemoryUsage();
      }
    }
    for (size_t c = 0; c < num_fields; ++c) {
      const double ratio =
          encoded[c] == 0
              ? 0.0
              : static_cast<double>(plain[c]) /
                    static_cast<double>(encoded[c]);
      cold.PrintRow({v.label, t->schema().field(c).name,
                     bench::Fmt(plain[c]), bench::Fmt(encoded[c]),
                     bench::Fmt(ratio, 2)});
    }
  }
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
