// Experiment F5 — EGI parameter sweep.
//
// Claim (paper §2): the decay speed "comes both from the initial
// infection at a certain time stamp, but also the bi-directional growth
// along the time axes". We sweep seed rate x spread x decay step over a
// static 50k-tuple table and report the extent half-life (ticks until
// half the tuples are gone) and the spot structure at that point.
// spread=0 is the ablation: seeding alone, no epidemic growth.

#include "bench/bench_util.h"
#include "fungus/egi_fungus.h"
#include "fungus/rot_analysis.h"

namespace fungusdb {
namespace {

constexpr uint64_t kRows = 50000;
constexpr int kMaxTicks = 4000;

Table FilledTable() {
  TableOptions opts;
  opts.rows_per_segment = 1024;
  Table t("t", Schema::Make({{"v", DataType::kInt64, false}}).value(),
          opts);
  for (uint64_t i = 0; i < kRows; ++i) {
    t.Append({Value::Int64(static_cast<int64_t>(i))},
             static_cast<Timestamp>(i))
        .value();
  }
  return t;
}

void Run() {
  bench::Banner("F5", "EGI sweep: seeds x spread x decay step");
  bench::JsonReport report("F5");

  bench::TablePrinter printer({"seeds/tick", "spread", "step",
                               "half_life_ticks", "spots@half",
                               "max_spot@half"},
                              17);
  printer.MirrorTo(&report);
  printer.PrintHeader();

  for (double seeds : {0.5, 2.0, 8.0}) {
    for (double spread : {0.0, 0.5, 1.0}) {
      for (double step : {0.1, 0.34}) {
        Table t = FilledTable();
        EgiFungus::Params p;
        p.seeds_per_tick = seeds;
        p.spread_probability = spread;
        p.decay_step = step;
        EgiFungus fungus(p);
        int half_life = -1;
        for (int tick = 1; tick <= kMaxTicks; ++tick) {
          DecayContext ctx(&t, tick);
          fungus.Tick(ctx);
          if (t.live_rows() <= kRows / 2) {
            half_life = tick;
            break;
          }
        }
        RotStructure rot = AnalyzeRot(t);
        printer.PrintRow(
            {bench::Fmt(seeds, 1), bench::Fmt(spread, 1),
             bench::Fmt(step, 2),
             half_life < 0 ? (">" + std::to_string(kMaxTicks))
                           : std::to_string(half_life),
             bench::Fmt(rot.num_spots), bench::Fmt(rot.max_spot)});
      }
    }
  }
  std::printf("\nexpected shape: spread>0 shortens half-life and grows "
              "max_spot; spread=0 leaves isolated pinpricks\n");
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
