// Experiment F2 — rotting-spot structure: EGI vs uniform random decay.
//
// Claim (paper §2): EGI "creates rotting spots in R, which leads to
// removing complete insertion ranges" — the Blue-Cheese effect. A
// spotless comparator killing the same number of tuples uniformly at
// random produces scattered pinpricks instead.
//
// Setup: a static table of 100k tuples; both fungi tick 300 times with
// kill rates tuned to match. We report the dead-run structure over time
// and the contiguous-run length distribution at the end.

#include "bench/bench_util.h"
#include "fungus/egi_fungus.h"
#include "fungus/random_blight_fungus.h"
#include "fungus/rot_analysis.h"

namespace fungusdb {
namespace {

constexpr uint64_t kRows = 100000;
constexpr int kTicks = 300;

Table FilledTable() {
  TableOptions opts;
  opts.rows_per_segment = 1024;
  Table t("t", Schema::Make({{"v", DataType::kInt64, false}}).value(),
          opts);
  for (uint64_t i = 0; i < kRows; ++i) {
    t.Append({Value::Int64(static_cast<int64_t>(i))},
             static_cast<Timestamp>(i))
        .value();
  }
  return t;
}

void Report(const std::string& label, const Table& t, int tick,
            const bench::TablePrinter& printer) {
  RotStructure rot = AnalyzeRot(t);
  const uint64_t dead = rot.dead_tuples + rot.reclaimed_tuples;
  printer.PrintRow({std::to_string(tick), label, bench::Fmt(dead),
                    bench::Fmt(rot.num_spots),
                    bench::Fmt(rot.mean_spot, 1),
                    bench::Fmt(rot.max_spot)});
}

void Run() {
  bench::Banner("F2", "rotting spots: EGI vs uniform random decay");
  bench::JsonReport report("F2");

  Table egi_table = FilledTable();
  Table blight_table = FilledTable();

  EgiFungus::Params ep;
  ep.seeds_per_tick = 2.0;
  ep.decay_step = 0.34;
  ep.spread_probability = 1.0;
  EgiFungus egi(ep);

  // Blight kill rate roughly matched to EGI's mature kill rate.
  RandomBlightFungus::Params bp;
  bp.tuples_per_tick = 40;
  bp.decay_step = 1.0;
  RandomBlightFungus blight(bp);

  bench::TablePrinter printer(
      {"tick", "fungus", "dead", "spots", "mean_spot", "max_spot"}, 12);
  printer.MirrorTo(&report);
  printer.PrintHeader();
  for (int tick = 1; tick <= kTicks; ++tick) {
    DecayContext ec(&egi_table, tick);
    egi.Tick(ec);
    DecayContext bc(&blight_table, tick);
    blight.Tick(bc);
    if (tick % 60 == 0) {
      Report("egi", egi_table, tick, printer);
      Report("random", blight_table, tick, printer);
    }
  }

  // Spot-length distribution at the end (the figure's series).
  auto quantile = [](const std::vector<uint64_t>& sorted, double q) {
    if (sorted.empty()) return uint64_t{0};
    size_t idx = static_cast<size_t>(q * (sorted.size() - 1));
    return sorted[idx];
  };
  std::printf("\nspot-length distribution after %d ticks\n", kTicks);
  bench::TablePrinter dist(
      {"fungus", "spots", "p50", "p90", "p99", "max"}, 10);
  dist.MirrorTo(&report);
  dist.PrintHeader();
  for (const auto* pair :
       {&egi_table, &blight_table}) {
    RotStructure rot = AnalyzeRot(*pair);
    const std::string label = pair == &egi_table ? "egi" : "random";
    dist.PrintRow({label, bench::Fmt(rot.num_spots),
                   bench::Fmt(quantile(rot.spot_lengths, 0.5)),
                   bench::Fmt(quantile(rot.spot_lengths, 0.9)),
                   bench::Fmt(quantile(rot.spot_lengths, 0.99)),
                   bench::Fmt(rot.max_spot)});
  }

  std::printf("\ntime axis (one char per %llu tuples; '#'=live, '.'=dead)\n",
              static_cast<unsigned long long>(kRows / 72));
  std::printf("  egi:    %s\n", RenderTimeAxis(egi_table, 72).c_str());
  std::printf("  random: %s\n", RenderTimeAxis(blight_table, 72).c_str());
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
