// Experiment T7 — zone-map pruning win on selective scans.
//
// Claim (PR 4): insertion-ordered segments give every range predicate a
// tight per-segment zone, so selective scans touch only the segments
// that can match. At <= 1% selectivity the pruned scan should beat the
// unpruned one by >= 5x rows/sec; at 100% selectivity pruning must cost
// nothing (no segment is skippable, the planner just fails fast).
//
// Setup: one table of `rows` tuples (argv[1], default 1M) whose `v`
// column equals the row number, 4096 rows/segment. For each selectivity
// in {0.1%, 1%, 10%, 100%} run `SELECT count(*) WHERE v >= threshold`
// with pruning on and off, report mean latency, scan throughput and
// segments pruned.

#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "query/engine.h"
#include "query/parser.h"
#include "storage/table.h"

namespace fungusdb {
namespace {

constexpr int kRepetitions = 5;

double RunCase(QueryEngine& engine, Table& table, const std::string& sql,
               ResultSet* last) {
  Query query = ParseQuery(sql).value();
  engine.Execute(query, table, 0).value();  // warm-up
  bench::Stopwatch watch;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    *last = engine.Execute(query, table, 0).value();
  }
  return watch.ElapsedMicros() / kRepetitions;
}

void Run(uint64_t rows) {
  bench::Banner("T7", "zone-map pruning vs full scan");
  bench::JsonReport report("scan");

  TableOptions topts;
  topts.rows_per_segment = 4096;
  Table table("events",
              Schema::Make({{"v", DataType::kInt64, false}}).value(),
              topts);
  for (uint64_t n = 0; n < rows; ++n) {
    table.Append({Value::Int64(static_cast<int64_t>(n))},
                 static_cast<Timestamp>(n))
        .value();
  }

  QueryEngineOptions pruned_opts;
  QueryEngine pruned(pruned_opts);
  QueryEngineOptions unpruned_opts;
  unpruned_opts.enable_pruning = false;
  QueryEngine unpruned(unpruned_opts);

  bench::TablePrinter printer({"selectivity_pct", "pruning", "rows",
                               "rows_matched", "segments_pruned",
                               "mean_us", "rows_per_sec"},
                              16);
  printer.MirrorTo(&report);
  printer.PrintHeader();

  const double kSelectivities[] = {0.001, 0.01, 0.1, 1.0};
  for (double sel : kSelectivities) {
    const uint64_t threshold =
        rows - static_cast<uint64_t>(static_cast<double>(rows) * sel);
    const std::string sql =
        "SELECT count(*) AS n FROM events WHERE v >= " +
        std::to_string(threshold);
    double speedup = 0.0;
    for (bool prune : {true, false}) {
      QueryEngine& engine = prune ? pruned : unpruned;
      ResultSet rs;
      const double mean_us = RunCase(engine, table, sql, &rs);
      const double rows_per_sec =
          static_cast<double>(table.live_rows()) / (mean_us / 1e6);
      if (prune) {
        speedup = mean_us;  // stash; divided below
      } else if (speedup > 0.0) {
        speedup = mean_us / speedup;
      }
      printer.PrintRow({bench::Fmt(sel * 100.0, 1),
                        prune ? "on" : "off", bench::Fmt(table.live_rows()),
                        bench::Fmt(rs.stats.rows_matched),
                        bench::Fmt(rs.stats.segments_pruned),
                        bench::Fmt(mean_us, 1),
                        bench::Fmt(rows_per_sec, 0)});
    }
    std::printf("  -> selectivity %.1f%%: pruning speedup %.1fx\n",
                sel * 100.0, speedup);
  }
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main(int argc, char** argv) {
  uint64_t rows = 1000000;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  fungusdb::Run(rows);
  return 0;
}
