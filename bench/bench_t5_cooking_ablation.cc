// Experiment T5 — cook-before-rot ablation.
//
// Claim (paper §3/§4): the database stays healthy "if you regularly can
// turn rotting portions into summaries for later consumption". With the
// Kitchen on, historical questions remain answerable from the cellar
// after the raw tuples have rotted; with it off, the answers collapse
// to whatever is still live.
//
// Setup: IoT stream, 2-day retention, 12 virtual days. Historical
// questions (whole-history, i.e. mostly-rotted data):
//   q1: total readings per sensor      (GroupedAggregate)
//   q2: mean temperature per sensor    (GroupedAggregate)
//   q3: global temperature p50         (histogram)
// Exact values are tracked alongside in plain maps.

#include <cmath>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "core/database.h"
#include "fungus/retention_fungus.h"
#include "summary/grouped_aggregate.h"
#include "summary/histogram_sketch.h"
#include "workload/iot_workload.h"

namespace fungusdb {
namespace {

constexpr int kDays = 12;
constexpr uint64_t kTuplesPerDay = 5000;

struct Truth {
  std::map<int64_t, uint64_t> count_per_sensor;
  std::map<int64_t, double> temp_sum_per_sensor;
  std::vector<double> temps;
};

struct Run {
  std::unique_ptr<Database> db;
  Truth truth;
};

Run BuildRun(bool kitchen_on) {
  Run run;
  run.db = std::make_unique<Database>();
  IotWorkload workload(IotWorkload::Params{});
  run.db->CreateTable("readings", workload.schema()).value();
  run.db
      ->AttachFungus("readings",
                     std::make_unique<RetentionFungus>(2 * kDay), 2 * kHour)
      .value();
  if (kitchen_on) {
    CookSpec per_sensor;
    per_sensor.table_name = "readings";
    per_sensor.trigger = CookTrigger::kOnRot;
    per_sensor.cellar_name = "per_sensor_temp";
    per_sensor.column = "temp";
    per_sensor.group_by = "sensor_id";
    (void)run.db->AddCookSpec(per_sensor);
    CookSpec hist;
    hist.table_name = "readings";
    hist.trigger = CookTrigger::kOnRot;
    hist.cellar_name = "temp_hist";
    hist.column = "temp";
    hist.factory = [] {
      return std::make_unique<HistogramSketch>(-50.0, 150.0, 256);
    };
    (void)run.db->AddCookSpec(hist);
  }

  for (int day = 1; day <= kDays; ++day) {
    for (uint64_t i = 0; i < kTuplesPerDay; ++i) {
      std::vector<Value> record = *workload.Next();
      run.truth.count_per_sensor[record[0].AsInt64()] += 1;
      run.truth.temp_sum_per_sensor[record[0].AsInt64()] +=
          record[1].AsFloat64();
      run.truth.temps.push_back(record[1].AsFloat64());
      run.db->Insert("readings", record).value();
    }
    run.db->AdvanceTime(kDay).value();
  }
  return run;
}

/// Answers "count per sensor" from cellar + live data; returns mean
/// relative error across sensors.
double CountError(Run& run) {
  const auto* cooked = static_cast<const GroupedAggregate*>(
      run.db->cellar().Find("per_sensor_temp"));
  double err_sum = 0.0;
  int sensors = 0;
  for (const auto& [sensor, exact] : run.truth.count_per_sensor) {
    uint64_t estimate = 0;
    if (cooked != nullptr) {
      Result<AggregateState> state = cooked->GroupState(Value::Int64(sensor));
      if (state.ok()) estimate += state->count;
    }
    ResultSet live = run.db
                         ->ExecuteSql("SELECT count(*) AS n FROM readings "
                                      "WHERE sensor_id = " +
                                      std::to_string(sensor))
                         .value();
    estimate += static_cast<uint64_t>(live.at(0, 0).AsInt64());
    err_sum += std::abs(static_cast<double>(estimate) -
                        static_cast<double>(exact)) /
               static_cast<double>(exact);
    ++sensors;
  }
  return err_sum / sensors;
}

double MeanTempError(Run& run) {
  const auto* cooked = static_cast<const GroupedAggregate*>(
      run.db->cellar().Find("per_sensor_temp"));
  double err_sum = 0.0;
  int sensors = 0;
  for (const auto& [sensor, exact_sum] : run.truth.temp_sum_per_sensor) {
    const double exact_mean =
        exact_sum / run.truth.count_per_sensor[sensor];
    double sum = 0.0;
    uint64_t count = 0;
    if (cooked != nullptr) {
      Result<AggregateState> state = cooked->GroupState(Value::Int64(sensor));
      if (state.ok()) {
        sum += state->sum;
        count += state->count;
      }
    }
    ResultSet live =
        run.db
            ->ExecuteSql("SELECT count(temp) AS n, sum(temp) AS s "
                         "FROM readings WHERE sensor_id = " +
                         std::to_string(sensor))
            .value();
    count += static_cast<uint64_t>(live.at(0, 0).AsInt64());
    if (!live.at(0, 1).is_null()) sum += live.at(0, 1).AsFloat64();
    const double estimate = count == 0 ? 0.0 : sum / count;
    err_sum += std::abs(estimate - exact_mean) /
               std::max(1.0, std::abs(exact_mean));
    ++sensors;
  }
  return err_sum / sensors;
}

double MedianError(Run& run) {
  std::vector<double> temps = run.truth.temps;
  std::sort(temps.begin(), temps.end());
  const double exact = temps[temps.size() / 2];
  const auto* hist = static_cast<const HistogramSketch*>(
      run.db->cellar().Find("temp_hist"));
  double estimate;
  if (hist != nullptr) {
    estimate = hist->EstimateQuantile(0.5).value();
  } else {
    // Kitchen off: best effort from live data via the avg as a proxy
    // is unfair; report the live-data median via sampling the table.
    std::vector<double> live;
    const TableHandle t = run.db->GetTable("readings").value();
    t.table().ForEachLive([&](RowId row) {
      live.push_back(t.table().GetValue(row, 1).value().AsFloat64());
    });
    if (live.empty()) return 1.0;
    std::sort(live.begin(), live.end());
    estimate = live[live.size() / 2];
  }
  return std::abs(estimate - exact) / std::max(1.0, std::abs(exact));
}

void RunAll() {
  bench::Banner("T5", "cooking ablation: kitchen on vs off");
  bench::JsonReport report("T5");

  bench::TablePrinter printer({"kitchen", "live_rows", "rows_cooked",
                               "count_err", "mean_temp_err", "p50_err"},
                              15);
  printer.MirrorTo(&report);
  printer.PrintHeader();
  for (bool kitchen_on : {true, false}) {
    Run run = BuildRun(kitchen_on);
    const TableHandle t = run.db->GetTable("readings").value();
    printer.PrintRow({kitchen_on ? "on" : "off",
                      bench::Fmt(t.live_rows()),
                      bench::Fmt(run.db->kitchen().rows_cooked()),
                      bench::Fmt(CountError(run), 4),
                      bench::Fmt(MeanTempError(run), 4),
                      bench::Fmt(MedianError(run), 4)});
  }
  std::printf("\nexpected shape: kitchen=on errors near 0; kitchen=off "
              "loses the rotted 10 of 12 days\n");
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::RunAll();
  return 0;
}
