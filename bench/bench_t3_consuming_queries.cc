// Experiment T3 — the second natural law in action.
//
// Claim (paper §3): each query Q replaces R's extent by
// A ∪ (R − σ_P(R)): consuming queries monotonically shrink the extent,
// and a tuple is returned to the user at most once across any sequence
// of consuming queries.
//
// Setup: 100k clickstream events; rounds of CONSUME queries pull one
// user-id slice per round. Per round we report extent size, answer
// size, duplicates observed (must stay 0), and latency. The no-decay
// observing baseline re-reads the same tuples every round.

#include <set>

#include "bench/bench_util.h"
#include "core/database.h"
#include "workload/clickstream_workload.h"

namespace fungusdb {
namespace {

constexpr uint64_t kEvents = 100000;
constexpr int kRounds = 12;

void Run() {
  bench::Banner("T3", "consuming queries shrink the extent, no duplicates");
  bench::JsonReport report("T3");

  Database db;
  ClickstreamWorkload::Params wp;
  wp.num_users = 64;
  ClickstreamWorkload workload(wp);
  TableOptions topts;
  topts.rows_per_segment = 4096;
  db.CreateTable("clicks", workload.schema(), topts).value();
  db.Ingest("clicks", workload, kEvents).value();
  const TableHandle t = db.GetTable("clicks").value();

  // Duplicate detection across all rounds: (user, session, url, dwell)
  // is not unique, so track row identity via a consumed counter and the
  // Law-2 conservation equation instead, plus per-round answer sizes.
  bench::TablePrinter printer({"round", "mode", "extent_before", "answer",
                               "consumed", "latency_us"},
                              15);
  printer.MirrorTo(&report);
  printer.PrintHeader();

  uint64_t consumed_total = 0;
  const uint64_t appended = t.total_appended();
  bool conservation_held = true;
  for (int round = 0; round < kRounds; ++round) {
    const uint64_t before = t.live_rows();
    const std::string sql =
        "CONSUME SELECT user_id, dwell_ms FROM clicks WHERE user_id % " +
        std::to_string(kRounds) + " = " + std::to_string(round);
    bench::Stopwatch watch;
    ResultSet rs = db.ExecuteSql(sql).value();
    const double us = watch.ElapsedMicros();
    consumed_total += rs.stats.rows_consumed;
    if (t.live_rows() + consumed_total != appended) {
      conservation_held = false;
    }
    printer.PrintRow({std::to_string(round), "consume",
                      bench::Fmt(before), bench::Fmt(rs.num_rows()),
                      bench::Fmt(rs.stats.rows_consumed),
                      bench::Fmt(us, 1)});
  }

  std::printf("\nconservation |R0| = |R| + consumed: %s (%llu = %llu + %llu)\n",
              conservation_held && t.live_rows() == 0 ? "HELD" : "VIOLATED",
              static_cast<unsigned long long>(appended),
              static_cast<unsigned long long>(t.live_rows()),
              static_cast<unsigned long long>(consumed_total));

  // Observing baseline: the same rounds never shrink the extent.
  Database baseline;
  ClickstreamWorkload workload2(wp);
  baseline.CreateTable("clicks", workload2.schema(), topts).value();
  baseline.Ingest("clicks", workload2, kEvents).value();
  const TableHandle bt = baseline.GetTable("clicks").value();
  uint64_t rows_reread = 0;
  for (int round = 0; round < kRounds; ++round) {
    const uint64_t before = bt.live_rows();
    const std::string sql =
        "SELECT user_id, dwell_ms FROM clicks WHERE user_id % " +
        std::to_string(kRounds) + " = " + std::to_string(round);
    bench::Stopwatch watch;
    ResultSet rs = baseline.ExecuteSql(sql).value();
    const double us = watch.ElapsedMicros();
    rows_reread += rs.stats.rows_scanned;
    if (round % 4 == 0) {
      printer.PrintRow({std::to_string(round), "observe",
                        bench::Fmt(before), bench::Fmt(rs.num_rows()),
                        "0", bench::Fmt(us, 1)});
    }
  }
  std::printf("\nobserving baseline rescanned %llu tuple-visits for the "
              "same answers (consuming visits each tuple once)\n",
              static_cast<unsigned long long>(rows_reread));
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
