// Experiment T9 — tiered compressed segments (DESIGN.md §15).
//
// Claim (PR 9): freezing cold segments into the encoded tier lets a
// table hold many more live rows per GB of heap without slowing hot
// scans. The zone maps prune frozen segments before any decode, so a
// predicate over the hot tail runs the same machine code whether 0% or
// 90% of the table is frozen; full scans over cold data ride the
// encoded-domain fast paths (FOR range decisions, RLE liveness skips).
//
// Setup: one table of `rows` tuples (argv[1], default 400k), 4096 rows
// per segment, schema (device string, v int64) — v equals the row
// number, device changes every 1024 rows (dictionary + RLE friendly,
// like real sensor batches). For each frozen fraction in
// {0%, 50%, 90%, 99%} freeze that prefix of the time axis and measure:
//   rows_per_gb  — live rows per GB of table heap (the capacity claim)
//   hot_rps      — rows/sec of a count over the newest 10% (all plain
//                  until 90%; zone maps prune every frozen segment)
//   cold_rps     — rows/sec of a count over the whole table (touches
//                  every frozen segment)
//
// Expected shape (checked by CI against BENCH_storage.json):
// rows_per_gb at 90% frozen >= 5x the 0% baseline; hot_rps at 90%
// within 10% of the 0% baseline.

#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "query/engine.h"
#include "query/parser.h"
#include "storage/table.h"

namespace fungusdb {
namespace {

constexpr int kRepetitions = 7;

/// Best-of-N mean latency in microseconds: deterministic work + min
/// time gives a noise-robust number for the CI shape check.
double RunCase(QueryEngine& engine, Table& table, const std::string& sql,
               ResultSet* last) {
  Query query = ParseQuery(sql).value();
  engine.Execute(query, table, 0).value();  // warm-up
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    bench::Stopwatch watch;
    *last = engine.Execute(query, table, 0).value();
    const double us = watch.ElapsedMicros();
    if (rep == 0 || us < best) best = us;
  }
  return best;
}

void Run(uint64_t rows) {
  bench::Banner("T9", "tiered cold storage: rows/GB and scan throughput");
  bench::JsonReport report("storage");

  constexpr uint64_t kRowsPerSegment = 4096;
  TableOptions topts;
  topts.rows_per_segment = kRowsPerSegment;
  Table table("events",
              Schema::Make({{"device", DataType::kString, false},
                            {"v", DataType::kInt64, false}})
                  .value(),
              topts);
  for (uint64_t n = 0; n < rows; ++n) {
    table
        .Append({Value::String("building-7-floor-3-sensor-unit-" +
                               std::to_string((n / 1024) % 32)),
                 Value::Int64(static_cast<int64_t>(n))},
                static_cast<Timestamp>(n))
        .value();
  }

  QueryEngine engine{QueryEngineOptions{}};
  // The hot threshold sits on a segment boundary so the hot scan does
  // IDENTICAL work at every frozen fraction up to 90%: the zone maps
  // prune every older segment whether frozen or plain, and the scanned
  // tail is plain either way. Any hot_rps difference is pure overhead
  // of having cold neighbours — the regression the CI bar caps at 10%.
  const uint64_t hot_threshold =
      (rows - rows / 10 + kRowsPerSegment - 1) / kRowsPerSegment *
      kRowsPerSegment;
  const std::string hot_sql =
      "SELECT count(*) AS n FROM events WHERE v >= " +
      std::to_string(hot_threshold);
  const std::string cold_sql =
      "SELECT count(*) AS n FROM events WHERE v >= 0";

  bench::TablePrinter printer({"pct_frozen", "frozen_segs", "live_rows",
                               "memory_mib", "rows_per_gb", "hot_rps",
                               "cold_rps", "encoded_mib"},
                              14);
  printer.MirrorTo(&report);
  printer.PrintHeader();

  const int kFractions[] = {0, 50, 90, 99};
  for (int pct : kFractions) {
    // Freezing is monotone across fractions: top up to the target.
    // FreezeColdSegments walks segments oldest-first per shard, so the
    // frozen set is a prefix of the time axis and the hot tail stays
    // plain until the fraction reaches it.
    const size_t target =
        table.num_segments() * static_cast<size_t>(pct) / 100;
    const StorageStats before = table.GetStorageStats();
    if (target > before.frozen_segments) {
      table.FreezeColdSegments(0, target - before.frozen_segments);
    }
    const StorageStats st = table.GetStorageStats();

    ResultSet hot_rs;
    const double hot_us = RunCase(engine, table, hot_sql, &hot_rs);
    const double hot_rps =
        static_cast<double>(rows - hot_threshold) / (hot_us / 1e6);
    ResultSet cold_rs;
    const double cold_us = RunCase(engine, table, cold_sql, &cold_rs);
    const double cold_rps = static_cast<double>(rows) / (cold_us / 1e6);

    const double mem = static_cast<double>(table.MemoryUsage());
    const double rows_per_gb =
        static_cast<double>(table.live_rows()) / (mem / (1 << 30));
    // pct_frozen is the REQUESTED fraction (stable row key for the CI
    // shape check at any row count); frozen_segs is the actual count.
    printer.PrintRow(
        {bench::Fmt(static_cast<uint64_t>(pct)),
         bench::Fmt(st.frozen_segments), bench::Fmt(table.live_rows()),
         bench::Fmt(mem / (1 << 20), 2), bench::Fmt(rows_per_gb, 0),
         bench::Fmt(hot_rps, 0), bench::Fmt(cold_rps, 0),
         bench::Fmt(static_cast<double>(st.encoded_bytes) / (1 << 20),
                    2)});
  }

  std::printf("\nsummary: frozen prefix must not slow the hot tail;\n"
              "rows/GB at 90%% frozen should be >= 5x the 0%% row\n");
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main(int argc, char** argv) {
  uint64_t rows = 400000;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  fungusdb::Run(rows);
  return 0;
}
