// Experiment F1 — per-tuple freshness distributions under each fungus.
//
// Claim (paper §2): freshness is an ever-decreasing per-tuple property
// in (0, 1]; different fungi shape its distribution differently:
// retention gives a uniform age ramp, exponential a geometric pile-up
// near the kill threshold, EGI a bimodal mix (healthy tuples at 1.0 plus
// infected tuples sliding down).
//
// Workload: 5k IoT tuples/day for 10 days, tick every 2h; freshness
// histograms (10 bins over [0,1]) snapshotted on days 2/4/6/8/10.

#include <memory>

#include "bench/bench_util.h"
#include "core/database.h"
#include "fungus/egi_fungus.h"
#include "fungus/exponential_fungus.h"
#include "fungus/retention_fungus.h"
#include "fungus/rot_analysis.h"
#include "workload/iot_workload.h"

namespace fungusdb {
namespace {

void Run() {
  bench::Banner("F1", "freshness distribution snapshots");
  bench::JsonReport report("F1");

  struct Variant {
    std::string label;
    std::unique_ptr<Database> db;
    std::unique_ptr<IotWorkload> workload;
  };
  std::vector<Variant> variants;
  auto add_variant = [&](const std::string& label,
                         std::unique_ptr<Fungus> fungus) {
    Variant v;
    v.label = label;
    v.db = std::make_unique<Database>();
    v.workload = std::make_unique<IotWorkload>(IotWorkload::Params{});
    v.db->CreateTable("r", v.workload->schema()).value();
    v.db->AttachFungus("r", std::move(fungus), 2 * kHour).value();
    variants.push_back(std::move(v));
  };

  add_variant("retention", std::make_unique<RetentionFungus>(8 * kDay));
  add_variant("exponential",
              std::make_unique<ExponentialFungus>(
                  ExponentialFungus::FromHalfLife(4 * kDay)));
  add_variant("egi", [] {
    EgiFungus::Params p;
    p.seeds_per_tick = 4.0;
    p.decay_step = 0.15;
    return std::make_unique<EgiFungus>(p);
  }());

  bench::TablePrinter printer(
      {"day", "fungus", "live", "f<=0.2", "0.2-0.4", "0.4-0.6", "0.6-0.8",
       "f>0.8", "mean_f"},
      10);
  printer.MirrorTo(&report);
  printer.PrintHeader();
  for (int day = 1; day <= 10; ++day) {
    for (Variant& v : variants) {
      v.db->Ingest("r", *v.workload, 5000).value();
      v.db->AdvanceTime(kDay).value();
      if (day % 2 != 0) continue;
      const TableHandle t = v.db->GetTable("r").value();
      std::vector<uint64_t> hist = FreshnessHistogram(t.table(), 5);
      const HealthReport health = v.db->Health();
      printer.PrintRow({std::to_string(day), v.label,
                        bench::Fmt(t.live_rows()), bench::Fmt(hist[0]),
                        bench::Fmt(hist[1]), bench::Fmt(hist[2]),
                        bench::Fmt(hist[3]), bench::Fmt(hist[4]),
                        bench::Fmt(health.tables[0].mean_freshness, 3)});
    }
  }
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
