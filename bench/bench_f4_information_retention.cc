// Experiment F4 — information retained per fungus at equal storage.
//
// Claim (paper §2): fungi differ in "rate of decay, what to decay, how
// to decay" — at the same storage budget different fungi preserve
// different slices of the queryable information. We hold each variant
// near the same live-row budget (~25% of the stream) and measure the
// recall of four query classes against a never-decayed ghost table.
//
// recall(class) = rows returned by the decayed table
//               / rows returned by the ghost table, averaged per query.

#include <memory>

#include "bench/bench_util.h"
#include "core/database.h"
#include "fungus/egi_fungus.h"
#include "fungus/exponential_fungus.h"
#include "fungus/importance_fungus.h"
#include "fungus/retention_fungus.h"
#include "fungus/sliding_window_fungus.h"
#include "workload/iot_workload.h"
#include "workload/query_workload.h"

namespace fungusdb {
namespace {

constexpr int kDays = 16;
constexpr uint64_t kTuplesPerDay = 5000;
constexpr int kQueriesPerClassTarget = 300;

struct Variant {
  std::string label;
  std::unique_ptr<Database> db;
  std::unique_ptr<IotWorkload> workload;
};

uint64_t RowsOf(const ResultSet& rs) {
  // Aggregate queries report their input size via rows_matched.
  return rs.stats.rows_matched;
}

void Run() {
  bench::Banner("F4", "information retention per fungus, equal budget");
  bench::JsonReport report("F4");

  // Budget: ~4 days of data = 20k rows out of 80k appended.
  std::vector<Variant> variants;
  auto add_variant = [&](const std::string& label,
                         std::unique_ptr<Fungus> fungus,
                         bool track_access = false) {
    Variant v;
    v.label = label;
    v.db = std::make_unique<Database>();
    v.workload = std::make_unique<IotWorkload>(IotWorkload::Params{});
    TableOptions topts;
    topts.rows_per_segment = 1024;
    topts.track_access = track_access;
    v.db->CreateTable("readings", v.workload->schema(), topts).value();
    if (fungus != nullptr) {
      v.db->AttachFungus("readings", std::move(fungus), 2 * kHour).value();
    }
    variants.push_back(std::move(v));
  };

  add_variant("ghost", nullptr);  // full retention: the recall reference
  add_variant("retention", std::make_unique<RetentionFungus>(4 * kDay));
  add_variant("window",
              std::make_unique<SlidingWindowFungus>(4 * kTuplesPerDay));
  add_variant("exponential",
              [] {
                // Half-life tuned so the steady state also holds ~4 days.
                ExponentialFungus::Params p =
                    ExponentialFungus::FromHalfLife(2 * kDay);
                p.kill_threshold = 0.25;
                return std::make_unique<ExponentialFungus>(p);
              }());
  add_variant("egi", [] {
    EgiFungus::Params p;
    p.seeds_per_tick = 4.0;
    p.decay_step = 0.25;
    p.age_bias = 3.0;
    return std::make_unique<EgiFungus>(p);
  }());
  add_variant("importance",
              [] {
                // Tuned so the accessed working set survives a few days
                // and untouched tuples rot within one, landing near the
                // same live-row budget as the other variants.
                ImportanceFungus::Params p;
                p.decay_step = 0.05;
                p.access_weight = 2.0;
                return std::make_unique<ImportanceFungus>(p);
              }(),
              /*track_access=*/true);

  // Drive all variants through the same 16 days. The read workload is
  // concentrated: dashboards keep asking about the hot sensors 0-9
  // (point lookups), which is exactly the signal the importance fungus
  // feeds on.
  QueryWorkload::Params qp;
  qp.num_sensors = 10;       // hot set
  qp.point_fraction = 1.0;   // all protective reads are point lookups
  for (int day = 1; day <= kDays; ++day) {
    for (Variant& v : variants) {
      v.db->Ingest("readings", *v.workload, kTuplesPerDay).value();
      QueryWorkload readers(qp);  // same 10 queries for every variant
      for (int q = 0; q < 10; ++q) {
        auto gen = readers.Next(v.db->Now());
        (void)v.db->Execute(gen.query);
      }
      v.db->AdvanceTime(kDay).value();
    }
  }

  std::printf("live rows at evaluation time (budget comparability):\n");
  for (Variant& v : variants) {
    std::printf("  %-12s %llu\n", v.label.c_str(),
                static_cast<unsigned long long>(
                    v.db->GetTable("readings").value().live_rows()));
  }

  // Recall evaluation: identical query sequence on every variant. Two
  // passes: a disjoint query mix (unseen questions) and a mix drawn
  // with the protective readers' seed (questions like the ones the
  // workload kept asking) — the axis where access-aware decay pays off.
  auto evaluate = [&](uint64_t eval_seed, uint64_t eval_sensors,
                      const char* title) {
    bench::TablePrinter printer(
        {"fungus", "point", "value_range", "recent", "historical"}, 14);
    printer.MirrorTo(&report);
    std::printf("\nrecall vs ghost — %s (1.00 = fully answerable)\n",
                title);
    printer.PrintHeader();
    for (size_t vi = 1; vi < variants.size(); ++vi) {
      QueryWorkload::Params eval_params;
      eval_params.num_sensors = eval_sensors;
      eval_params.history_depth = 12 * kDay;
      eval_params.recent_window = 2 * kDay;  // newest ingest ~1 day old
      eval_params.seed = eval_seed;
      QueryWorkload eval_ghost(eval_params);
      QueryWorkload eval_variant(eval_params);  // identical stream

      double recall_sum[4] = {0, 0, 0, 0};
      int counts[4] = {0, 0, 0, 0};
      int issued = 0;
      while (issued < 4 * kQueriesPerClassTarget) {
        auto ghost_q = eval_ghost.Next(variants[0].db->Now());
        auto var_q = eval_variant.Next(variants[vi].db->Now());
        ++issued;
        ResultSet ghost_rs =
            variants[0].db->Execute(ghost_q.query).value();
        const uint64_t truth = RowsOf(ghost_rs);
        if (truth == 0) continue;  // nothing to recall
        ResultSet var_rs = variants[vi].db->Execute(var_q.query).value();
        const int cls = static_cast<int>(ghost_q.query_class);
        recall_sum[cls] += static_cast<double>(RowsOf(var_rs)) /
                           static_cast<double>(truth);
        ++counts[cls];
      }
      std::vector<std::string> row{variants[vi].label};
      for (int cls = 0; cls < 4; ++cls) {
        row.push_back(counts[cls] == 0
                          ? "n/a"
                          : bench::Fmt(recall_sum[cls] / counts[cls], 3));
      }
      printer.PrintRow(row);
    }
  };
  evaluate(0xEC0, 100, "uniform query mix over all sensors");
  evaluate(0xEC1, 10, "hot-set mix (the sensors the workload reads)");
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
