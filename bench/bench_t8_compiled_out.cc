// The -DFUNGUSDB_TRACE=OFF data point for T8: this TU is compiled with
// FUNGUSDB_TRACE_COMPILED_OUT (see bench/CMakeLists.txt), so every
// FUNGUS_TRACE_SPAN here expands to nothing — the measured loop is the
// true zero-instrumentation baseline for the per-span numbers.

#include <cstdint>

#include "bench/bench_util.h"
#include "common/trace.h"

namespace fungusdb {

double MeasureSpanNsCompiledOut(uint64_t iters) {
  bench::Stopwatch watch;
  for (uint64_t i = 0; i < iters; ++i) {
    FUNGUS_TRACE_SPAN("bench.span", i);
  }
  return watch.ElapsedMicros() * 1000.0 / static_cast<double>(iters);
}

}  // namespace fungusdb
