// Experiment T2 — query latency vs table age: decayed vs ever-growing.
//
// Claim (paper §3): regularly turning rotting portions into summaries
// keeps the database "in optimal health" — query cost stays bounded,
// while the no-decay fridge degrades linearly with accumulated data.
//
// Setup: ingest 20k IoT tuples/day. Every 5 virtual days replay a fixed
// query set (full-scan aggregate, point lookup, value range) 20 times on
// each variant and report mean wall-clock latency and rows scanned.

#include <memory>

#include "bench/bench_util.h"
#include "core/database.h"
#include "fungus/egi_fungus.h"
#include "fungus/retention_fungus.h"
#include "workload/iot_workload.h"

namespace fungusdb {
namespace {

constexpr int kDays = 20;
constexpr uint64_t kTuplesPerDay = 20000;
constexpr int kRepetitions = 20;

struct Variant {
  std::string label;
  std::unique_ptr<Database> db;
  std::unique_ptr<IotWorkload> workload;
};

const char* kQueries[] = {
    "SELECT count(*) AS n, avg(temp) AS t FROM readings",
    "SELECT * FROM readings WHERE sensor_id = 7",
    "SELECT count(*) AS n FROM readings WHERE temp BETWEEN 20 AND 22",
};
const char* kQueryLabels[] = {"scan_agg", "point", "range"};

void Run() {
  bench::Banner("T2", "query latency vs table age");
  bench::JsonReport report("T2");

  std::vector<Variant> variants;
  auto add_variant = [&](const std::string& label,
                         std::unique_ptr<Fungus> fungus) {
    Variant v;
    v.label = label;
    v.db = std::make_unique<Database>();
    v.workload = std::make_unique<IotWorkload>(IotWorkload::Params{});
    TableOptions topts;
    topts.rows_per_segment = 4096;
    v.db->CreateTable("readings", v.workload->schema(), topts).value();
    if (fungus != nullptr) {
      v.db->AttachFungus("readings", std::move(fungus), 2 * kHour).value();
    }
    variants.push_back(std::move(v));
  };
  add_variant("none", nullptr);
  add_variant("retention", std::make_unique<RetentionFungus>(4 * kDay));
  add_variant("egi", [] {
    EgiFungus::Params p;
    p.seeds_per_tick = 16.0;
    p.decay_step = 0.34;
    return std::make_unique<EgiFungus>(p);
  }());

  bench::TablePrinter printer({"day", "fungus", "query", "live_rows",
                               "mean_us", "rows_scanned"},
                              13);
  printer.MirrorTo(&report);
  printer.PrintHeader();
  for (int day = 1; day <= kDays; ++day) {
    for (Variant& v : variants) {
      v.db->Ingest("readings", *v.workload, kTuplesPerDay).value();
      v.db->AdvanceTime(kDay).value();
      if (day % 5 != 0) continue;
      const TableHandle t = v.db->GetTable("readings").value();
      for (size_t q = 0; q < std::size(kQueries); ++q) {
        // Warm-up run, then timed repetitions.
        v.db->ExecuteSql(kQueries[q]).value();
        uint64_t scanned = 0;
        bench::Stopwatch watch;
        for (int rep = 0; rep < kRepetitions; ++rep) {
          ResultSet rs = v.db->ExecuteSql(kQueries[q]).value();
          scanned = rs.stats.rows_scanned;
        }
        const double mean_us = watch.ElapsedMicros() / kRepetitions;
        printer.PrintRow({std::to_string(day), v.label, kQueryLabels[q],
                          bench::Fmt(t.live_rows()),
                          bench::Fmt(mean_us, 1), bench::Fmt(scanned)});
      }
    }
  }
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
