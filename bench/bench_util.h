#ifndef FUNGUSDB_BENCH_BENCH_UTIL_H_
#define FUNGUSDB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace fungusdb::bench {

/// Fixed-width row printer for experiment tables. Every experiment
/// binary prints a header banner, column names, then one line per row,
/// so EXPERIMENTS.md can quote the output verbatim.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {}

  void PrintHeader() const {
    for (const std::string& c : columns_) {
      std::printf("%-*s", width_, c.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s", std::string(width_ - 1, '-').c_str());
      std::printf(" ");
    }
    std::printf("\n");
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (const std::string& c : cells) {
      std::printf("%-*s", width_, c.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
  int width_;
};

inline void Banner(const std::string& id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), title.c_str());
}

/// Wall-clock stopwatch in microseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
               .count() /
           1000.0;
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string Fmt(uint64_t v) { return std::to_string(v); }

}  // namespace fungusdb::bench

#endif  // FUNGUSDB_BENCH_BENCH_UTIL_H_
