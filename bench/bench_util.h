#ifndef FUNGUSDB_BENCH_BENCH_UTIL_H_
#define FUNGUSDB_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace fungusdb::bench {

/// Machine-readable result sink. Each experiment binary owns one report,
/// mirrors its printed table rows into it (TablePrinter::MirrorTo), and
/// writes `BENCH_<name>.json` at the end of the run so result tracking
/// can diff runs without scraping the pretty-printed tables.
///
/// Rows are emitted as objects keyed by column name; numeric-looking
/// cells become JSON numbers, everything else a string.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void AddRow(const std::vector<std::string>& columns,
              const std::vector<std::string>& cells) {
    std::string row = "    {";
    const size_t n = std::min(columns.size(), cells.size());
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) row += ", ";
      row += '"' + Escape(columns[i]) + "\": ";
      if (LooksNumeric(cells[i])) {
        row += cells[i];
      } else {
        row += '"' + Escape(cells[i]) + '"';
      }
    }
    row += '}';
    rows_.push_back(std::move(row));
  }

  /// Writes `BENCH_<name>.json` into the current directory.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << "{\n  \"bench\": \"" << Escape(name_) << "\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    out.flush();
    if (out) std::printf("\nwrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return static_cast<bool>(out);
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;
      out += c;
    }
    return out;
  }

  /// Accepts plain decimal integers/floats (what Fmt produces); anything
  /// else — including NaN/inf, which JSON lacks — stays a string.
  static bool LooksNumeric(const std::string& s) {
    if (s.empty()) return false;
    size_t i = s[0] == '-' ? 1 : 0;
    if (i == s.size()) return false;
    bool digit = false, dot = false;
    for (; i < s.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(s[i]))) {
        digit = true;
      } else if (s[i] == '.' && !dot) {
        dot = true;
      } else {
        return false;
      }
    }
    return digit;
  }

  std::string name_;
  std::vector<std::string> rows_;
};

/// Fixed-width row printer for experiment tables. Every experiment
/// binary prints a header banner, column names, then one line per row,
/// so EXPERIMENTS.md can quote the output verbatim.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {}

  /// Every subsequent PrintRow is also appended to `json` (not owned).
  void MirrorTo(JsonReport* json) { json_ = json; }

  void PrintHeader() const {
    for (const std::string& c : columns_) {
      std::printf("%-*s", width_, c.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s", std::string(width_ - 1, '-').c_str());
      std::printf(" ");
    }
    std::printf("\n");
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (const std::string& c : cells) {
      std::printf("%-*s", width_, c.c_str());
    }
    std::printf("\n");
    if (json_ != nullptr) json_->AddRow(columns_, cells);
  }

 private:
  std::vector<std::string> columns_;
  int width_;
  JsonReport* json_ = nullptr;
};

inline void Banner(const std::string& id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), title.c_str());
}

/// Wall-clock stopwatch in microseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
               .count() /
           1000.0;
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string Fmt(uint64_t v) { return std::to_string(v); }

}  // namespace fungusdb::bench

#endif  // FUNGUSDB_BENCH_BENCH_UTIL_H_
