// Microbenchmarks (google-benchmark) for the hot paths underneath the
// experiment harnesses: append, scan, decay ticks, query execution, and
// sketch updates. These calibrate the absolute numbers quoted in
// EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include "fungus/egi_fungus.h"
#include "fungus/retention_fungus.h"
#include "query/engine.h"
#include "query/parser.h"
#include "storage/table.h"
#include "summary/count_min_sketch.h"
#include "summary/hyperloglog.h"

namespace fungusdb {
namespace {

Schema BenchSchema() {
  return Schema::Make({{"sensor", DataType::kInt64, false},
                       {"temp", DataType::kFloat64, false}})
      .value();
}

Table FilledTable(int64_t rows) {
  TableOptions opts;
  opts.rows_per_segment = 4096;
  Table t("t", BenchSchema(), opts);
  for (int64_t i = 0; i < rows; ++i) {
    t.Append({Value::Int64(i % 100), Value::Float64(20.0 + i % 10)}, i)
        .value();
  }
  return t;
}

void BM_TableAppend(benchmark::State& state) {
  TableOptions opts;
  opts.rows_per_segment = 4096;
  Table t("t", BenchSchema(), opts);
  const std::vector<Value> row{Value::Int64(7), Value::Float64(21.5)};
  Timestamp now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Append(row, ++now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableAppend);

void BM_TableScanLive(benchmark::State& state) {
  Table t = FilledTable(state.range(0));
  for (auto _ : state) {
    uint64_t count = 0;
    t.ForEachLive([&](RowId) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableScanLive)->Arg(10000)->Arg(100000);

void BM_RetentionTick(benchmark::State& state) {
  // A tick that touches every live tuple but kills none.
  Table t = FilledTable(state.range(0));
  RetentionFungus fungus(1 << 30);
  Timestamp now = state.range(0);
  for (auto _ : state) {
    DecayContext ctx(&t, ++now);
    fungus.Tick(ctx);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RetentionTick)->Arg(10000)->Arg(100000);

void BM_EgiTick(benchmark::State& state) {
  Table t = FilledTable(100000);
  EgiFungus::Params p;
  p.seeds_per_tick = 4.0;
  p.decay_step = 0.1;
  EgiFungus fungus(p);
  Timestamp now = 0;
  for (auto _ : state) {
    DecayContext ctx(&t, ++now);
    fungus.Tick(ctx);
    if (t.live_rows() < 50000) {
      state.PauseTiming();
      t = FilledTable(100000);
      fungus.Reset();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_EgiTick);

void BM_QueryScanFilter(benchmark::State& state) {
  // `temp > 25` compiles to the typed fast-scan path.
  Table t = FilledTable(state.range(0));
  QueryEngine engine;
  const Query q =
      ParseQuery("SELECT count(*) AS n FROM t WHERE temp > 25").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q, t, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueryScanFilter)->Arg(10000)->Arg(100000);

void BM_QueryScanFilterGeneric(benchmark::State& state) {
  // Same predicate wrapped in NOT NOT: declines fast-path compilation,
  // measuring the tuple-at-a-time evaluator (the ablation pair of
  // BM_QueryScanFilter).
  Table t = FilledTable(state.range(0));
  QueryEngine engine;
  const Query q = ParseQuery(
                      "SELECT count(*) AS n FROM t "
                      "WHERE NOT NOT (temp > 25)")
                      .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q, t, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueryScanFilterGeneric)->Arg(10000)->Arg(100000);

void BM_ParseQuery(benchmark::State& state) {
  const std::string sql =
      "CONSUME SELECT sensor, avg(temp) AS t FROM readings "
      "WHERE temp BETWEEN 20 AND 30 AND sensor % 2 = 0 "
      "GROUP BY sensor ORDER BY t DESC LIMIT 10";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseQuery(sql));
  }
}
BENCHMARK(BM_ParseQuery);

void BM_CountMinObserve(benchmark::State& state) {
  CountMinSketch sketch(1024, 4);
  int64_t i = 0;
  for (auto _ : state) {
    sketch.Observe(Value::Int64(++i % 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinObserve);

void BM_HyperLogLogObserve(benchmark::State& state) {
  HyperLogLog hll(12);
  int64_t i = 0;
  for (auto _ : state) {
    hll.Observe(Value::Int64(++i));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLogLogObserve);

}  // namespace
}  // namespace fungusdb

BENCHMARK_MAIN();
