// Experiment T8 — span tracer overhead (PR 5 acceptance gate).
//
// Claim: FUNGUS_TRACE_SPAN costs a relaxed atomic load when the tracer
// is disabled — cheap enough to leave compiled into every hot path.
// The acceptance bar is <= 2% disabled-tracer overhead on the T7 scan
// path, reported as overhead_disabled_pct in BENCH_obs.json.
//
// Two measurements:
//   1. Per-span cost — a tight loop of bare spans, tracer disabled and
//      enabled, reported in ns/span.
//   2. Scan-path overhead — the T7 selective scan (1% selectivity,
//      pruning on) run in interleaved A/B batches with the tracer
//      disabled vs enabled. overhead_enabled_pct is the measured A/B
//      delta; overhead_disabled_pct is the analytic bound
//      spans_per_scan * disabled_ns / scan_time (the disabled branch is
//      too cheap to resolve above run-to-run noise in an A/B, so the
//      bound is the honest number).

#include <cstdlib>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/trace.h"
#include "core/database.h"
#include "fungus/retention_fungus.h"
#include "query/engine.h"
#include "query/parser.h"
#include "storage/table.h"

namespace fungusdb {

// Defined in bench_t8_compiled_out.cc, which is built with
// FUNGUSDB_TRACE_COMPILED_OUT — the same loop with no span sites.
double MeasureSpanNsCompiledOut(uint64_t iters);

namespace {

constexpr int kScanReps = 9;
constexpr int kTickReps = 5;
constexpr uint64_t kSpanIters = 2000000;

double MeasureSpanNs(uint64_t iters) {
  bench::Stopwatch watch;
  for (uint64_t i = 0; i < iters; ++i) {
    FUNGUS_TRACE_SPAN("bench.span", i);
  }
  return watch.ElapsedMicros() * 1000.0 / static_cast<double>(iters);
}

double MeasureScanUs(QueryEngine& engine, const Query& query,
                     Table& table) {
  bench::Stopwatch watch;
  ResultSet rs = engine.Execute(query, table, 0).value();
  (void)rs;
  return watch.ElapsedMicros();
}

// One fresh database per repetition so every measured AdvanceTime does
// the same work: a bulk-kill retention tick over `rows` tuples plus
// two empty follow-up ticks.
double MeasureTickUs(uint64_t rows) {
  Database db;
  db.CreateTable("d", Schema::Make({{"v", DataType::kInt64, false}})
                          .value())
      .value();
  for (uint64_t n = 0; n < rows; ++n) {
    db.Insert("d", {Value::Int64(static_cast<int64_t>(n))}).value();
  }
  db.AttachFungus("d", std::make_unique<RetentionFungus>(kHour),
                  /*period=*/kHour)
      .value();
  bench::Stopwatch watch;
  db.AdvanceTime(3 * kHour).value();
  return watch.ElapsedMicros();
}

void Run(uint64_t rows) {
  bench::Banner("T8", "span tracer overhead on the scan path");
  bench::JsonReport report("obs");
  Tracer& tracer = Tracer::Global();

  // --- Part 1: bare span cost. ---
  tracer.Disable();
  MeasureSpanNs(kSpanIters);  // warm-up
  const double disabled_ns = MeasureSpanNs(kSpanIters);
  const double compiled_out_ns = MeasureSpanNsCompiledOut(kSpanIters);
  tracer.Enable();
  const double enabled_ns = MeasureSpanNs(kSpanIters);
  tracer.Disable();
  tracer.Clear();

  bench::TablePrinter spans({"case", "iterations", "ns_per_span"}, 16);
  spans.MirrorTo(&report);
  spans.PrintHeader();
  spans.PrintRow({"span_compiled_out", bench::Fmt(kSpanIters),
                  bench::Fmt(compiled_out_ns, 2)});
  spans.PrintRow({"span_disabled", bench::Fmt(kSpanIters),
                  bench::Fmt(disabled_ns, 2)});
  spans.PrintRow({"span_enabled", bench::Fmt(kSpanIters),
                  bench::Fmt(enabled_ns, 2)});

  // --- Part 2: the T7 scan, tracer disabled vs enabled. ---
  TableOptions topts;
  topts.rows_per_segment = 4096;
  Table table("events",
              Schema::Make({{"v", DataType::kInt64, false}}).value(),
              topts);
  for (uint64_t n = 0; n < rows; ++n) {
    table.Append({Value::Int64(static_cast<int64_t>(n))},
                 static_cast<Timestamp>(n))
        .value();
  }
  QueryEngine engine;
  const uint64_t threshold = rows - rows / 100;  // 1% selectivity
  const Query query =
      ParseQuery("SELECT count(*) AS n FROM events WHERE v >= " +
                 std::to_string(threshold))
          .value();
  MeasureScanUs(engine, query, table);  // warm-up

  // Interleaved A/B so drift (frequency scaling, cache state) hits
  // both sides equally.
  double disabled_us = 0.0;
  double enabled_us = 0.0;
  for (int rep = 0; rep < kScanReps; ++rep) {
    tracer.Disable();
    disabled_us += MeasureScanUs(engine, query, table);
    tracer.Enable();
    enabled_us += MeasureScanUs(engine, query, table);
  }
  tracer.Disable();
  tracer.Clear();
  disabled_us /= kScanReps;
  enabled_us /= kScanReps;

  const double rows_per_sec =
      static_cast<double>(table.live_rows()) / (disabled_us / 1e6);
  bench::TablePrinter scan_table(
      {"case", "reps", "mean_us", "rows_per_sec"}, 16);
  scan_table.MirrorTo(&report);
  scan_table.PrintHeader();
  scan_table.PrintRow({"scan_disabled", bench::Fmt(uint64_t{kScanReps}),
                       bench::Fmt(disabled_us, 1),
                       bench::Fmt(rows_per_sec, 0)});
  scan_table.PrintRow(
      {"scan_enabled", bench::Fmt(uint64_t{kScanReps}),
       bench::Fmt(enabled_us, 1),
       bench::Fmt(static_cast<double>(table.live_rows()) /
                      (enabled_us / 1e6),
                  0)});

  // --- Part 3: decay-tick throughput, tracer disabled vs enabled. ---
  const uint64_t tick_rows = rows / 5 + 1;
  MeasureTickUs(tick_rows);  // warm-up
  double tick_disabled_us = 0.0;
  double tick_enabled_us = 0.0;
  for (int rep = 0; rep < kTickReps; ++rep) {
    tracer.Disable();
    tick_disabled_us += MeasureTickUs(tick_rows);
    tracer.Enable();
    tick_enabled_us += MeasureTickUs(tick_rows);
  }
  tracer.Disable();
  tracer.Clear();
  tick_disabled_us /= kTickReps;
  tick_enabled_us /= kTickReps;
  scan_table.PrintRow({"tick_disabled", bench::Fmt(uint64_t{kTickReps}),
                       bench::Fmt(tick_disabled_us, 1),
                       bench::Fmt(static_cast<double>(tick_rows) /
                                      (tick_disabled_us / 1e6),
                                  0)});
  scan_table.PrintRow({"tick_enabled", bench::Fmt(uint64_t{kTickReps}),
                       bench::Fmt(tick_enabled_us, 1),
                       bench::Fmt(static_cast<double>(tick_rows) /
                                      (tick_enabled_us / 1e6),
                                  0)});

  // The scan path holds two spans at this shape: query.execute and
  // scan.serial (morsel scans add one per morsel; serial here).
  const double spans_per_scan = 2.0;
  const double overhead_disabled_pct =
      spans_per_scan * disabled_ns / (disabled_us * 1000.0) * 100.0;
  const double overhead_enabled_pct =
      (enabled_us - disabled_us) / disabled_us * 100.0;

  bench::TablePrinter summary({"spans_per_scan", "overhead_disabled_pct",
                               "overhead_enabled_pct"},
                              24);
  summary.MirrorTo(&report);
  summary.PrintHeader();
  summary.PrintRow({bench::Fmt(spans_per_scan, 0),
                    bench::Fmt(overhead_disabled_pct, 4),
                    bench::Fmt(overhead_enabled_pct, 2)});
  std::printf(
      "  -> disabled span %.2f ns, enabled span %.2f ns; "
      "disabled scan overhead %.4f%% (bar: <= 2%%)\n",
      disabled_ns, enabled_ns, overhead_disabled_pct);
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main(int argc, char** argv) {
  uint64_t rows = 1000000;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  fungusdb::Run(rows);
  return 0;
}
