// Experiment F3 — cooked-summary accuracy vs space.
//
// Claim (paper §3): rot is survivable if data is distilled "into useful
// knowledge, summary" first. This quantifies what each cooked form
// costs in memory and what accuracy it buys, on a 200k-event
// clickstream whose exact statistics we track alongside.
//
// Series: Count-Min width sweep (heavy-hitter frequency error),
// HyperLogLog precision sweep (distinct-user error), histogram bucket
// sweep (dwell-time median error), and a P2 sketch for reference.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "summary/count_min_sketch.h"
#include "summary/histogram_sketch.h"
#include "summary/hyperloglog.h"
#include "summary/p2_quantile.h"
#include "workload/clickstream_workload.h"

namespace fungusdb {
namespace {

constexpr int kEvents = 200000;

void Run() {
  bench::Banner("F3", "summary accuracy vs space (cooking quality)");
  bench::JsonReport report("F3");

  // Generate the stream once; keep exact ground truth.
  ClickstreamWorkload workload(ClickstreamWorkload::Params{});
  std::vector<std::vector<Value>> events;
  events.reserve(kEvents);
  std::map<std::string, uint64_t> url_counts;
  std::set<int64_t> distinct_users;
  std::vector<double> dwells;
  for (int i = 0; i < kEvents; ++i) {
    std::vector<Value> e = *workload.Next();
    ++url_counts[e[2].AsString()];
    distinct_users.insert(e[0].AsInt64());
    dwells.push_back(static_cast<double>(e[3].AsInt64()));
    events.push_back(std::move(e));
  }
  std::sort(dwells.begin(), dwells.end());
  const double exact_median = dwells[dwells.size() / 2];
  std::string top_url;
  uint64_t top_count = 0;
  for (const auto& [url, count] : url_counts) {
    if (count > top_count) {
      top_count = count;
      top_url = url;
    }
  }

  bench::TablePrinter printer(
      {"sketch", "params", "memory", "metric", "exact", "estimate",
       "rel_err"},
      13);
  printer.MirrorTo(&report);
  printer.PrintHeader();

  // Count-Min width sweep: top-URL frequency.
  for (size_t width : {64, 256, 1024, 4096}) {
    CountMinSketch sketch(width, 4);
    for (const auto& e : events) sketch.Observe(e[2]);
    const double est =
        static_cast<double>(sketch.EstimateCount(Value::String(top_url)));
    printer.PrintRow(
        {"count_min", "w=" + std::to_string(width),
         FormatBytes(sketch.MemoryUsage()), "top_url_freq",
         bench::Fmt(top_count), bench::Fmt(est, 0),
         bench::Fmt(std::abs(est - static_cast<double>(top_count)) /
                        static_cast<double>(top_count),
                    4)});
  }

  // HyperLogLog precision sweep: distinct users.
  for (int precision : {8, 10, 12, 14}) {
    HyperLogLog hll(precision);
    for (const auto& e : events) hll.Observe(e[0]);
    const double est = hll.EstimateDistinct();
    const double exact = static_cast<double>(distinct_users.size());
    printer.PrintRow({"hyperloglog", "p=" + std::to_string(precision),
                      FormatBytes(hll.MemoryUsage()), "distinct_users",
                      bench::Fmt(exact, 0), bench::Fmt(est, 0),
                      bench::Fmt(std::abs(est - exact) / exact, 4)});
  }

  // Histogram bucket sweep: dwell-time median.
  const double dwell_hi = dwells.back() + 1.0;
  for (size_t buckets : {16, 64, 256, 1024}) {
    HistogramSketch hist(0.0, dwell_hi, buckets);
    for (const auto& e : events) hist.Observe(e[3]);
    const double est = hist.EstimateQuantile(0.5).value();
    printer.PrintRow(
        {"histogram", "b=" + std::to_string(buckets),
         FormatBytes(hist.MemoryUsage()), "dwell_p50",
         bench::Fmt(exact_median, 0), bench::Fmt(est, 0),
         bench::Fmt(std::abs(est - exact_median) / exact_median, 4)});
  }

  // P2: constant space, single quantile.
  {
    P2Quantile p2(0.5);
    for (const auto& e : events) p2.Observe(e[3]);
    const double est = p2.Estimate().value();
    printer.PrintRow(
        {"p2_quantile", "q=0.5", FormatBytes(p2.MemoryUsage()),
         "dwell_p50", bench::Fmt(exact_median, 0), bench::Fmt(est, 0),
         bench::Fmt(std::abs(est - exact_median) / exact_median, 4)});
  }
  report.Write();
}

}  // namespace
}  // namespace fungusdb

int main() {
  fungusdb::Run();
  return 0;
}
