// IoT monitoring pipeline: a sensor fleet streams readings into a
// decaying table; the Kitchen cooks rotting tuples into cellar
// summaries so dashboards keep answering historical questions long
// after the raw readings are gone.
//
//   ./build/examples/iot_pipeline

#include <cstdio>
#include <memory>

#include "fungusdb/database.h"
#include "fungusdb/fungi.h"
#include "fungusdb/summaries.h"
#include "fungusdb/workloads.h"

using namespace fungusdb;

int main() {
  Database db;
  IotWorkload workload(IotWorkload::Params{});
  db.CreateTable("readings", workload.schema()).value();

  // Raw readings lose half their freshness every 12 hours.
  db.AttachFungus("readings",
                  std::make_unique<ExponentialFungus>(
                      ExponentialFungus::FromHalfLife(12 * kHour)),
                  /*period=*/kHour)
      .value();

  // Cooking rules: when readings rot, distill them.
  CookSpec per_sensor;
  per_sensor.table_name = "readings";
  per_sensor.trigger = CookTrigger::kOnRot;
  per_sensor.cellar_name = "per_sensor_temp";
  per_sensor.column = "temp";
  per_sensor.group_by = "sensor_id";
  FUNGUSDB_CHECK_OK(db.AddCookSpec(per_sensor));

  CookSpec temp_hist;
  temp_hist.table_name = "readings";
  temp_hist.trigger = CookTrigger::kOnRot;
  temp_hist.cellar_name = "temp_histogram";
  temp_hist.column = "temp";
  temp_hist.factory = [] {
    return std::make_unique<HistogramSketch>(-50.0, 150.0, 64);
  };
  FUNGUSDB_CHECK_OK(db.AddCookSpec(temp_hist));

  // On ingest, track which sensors have ever reported (cheap, exact
  // enough): a HyperLogLog cooked as data arrives.
  CookSpec sensors_seen;
  sensors_seen.table_name = "readings";
  sensors_seen.trigger = CookTrigger::kOnIngest;
  sensors_seen.cellar_name = "sensors_seen";
  sensors_seen.column = "sensor_id";
  sensors_seen.factory = [] { return std::make_unique<HyperLogLog>(12); };
  FUNGUSDB_CHECK_OK(db.AddCookSpec(sensors_seen));

  // A week of operation: 2k readings/day.
  for (int day = 1; day <= 7; ++day) {
    db.Ingest("readings", workload, 2000).value();
    db.AdvanceTime(kDay).value();
  }

  std::printf("%s\n", db.Health().ToString().c_str());

  // Live dashboard: what is happening right now (still-fresh tuples).
  ResultSet live =
      db.ExecuteSql("SELECT count(*) AS n, avg(temp) AS avg_temp, "
                    "min(temp) AS lo, max(temp) AS hi FROM readings")
          .value();
  std::printf("live window:\n%s\n", live.ToString().c_str());

  // Historical dashboard: answered from the cellar, not from R.
  const auto* per_sensor_agg = static_cast<const GroupedAggregate*>(
      db.cellar().Find("per_sensor_temp"));
  std::printf("history (from the cellar): %zu sensors cooked, examples:\n",
              per_sensor_agg->num_groups());
  int shown = 0;
  for (const auto& [sensor, state] : per_sensor_agg->Entries()) {
    if (++shown > 3) break;
    std::printf("  sensor %s: %llu readings, mean %.2f C, range "
                "[%.2f, %.2f]\n",
                sensor.c_str(),
                static_cast<unsigned long long>(state.count), state.Mean(),
                state.min, state.max);
  }
  const auto* hist = static_cast<const HistogramSketch*>(
      db.cellar().Find("temp_histogram"));
  std::printf("  fleet-wide temp p50 over all history: %.2f C\n",
              hist->EstimateQuantile(0.5).value());
  const auto* seen =
      static_cast<const HyperLogLog*>(db.cellar().Find("sensors_seen"));
  std::printf("  distinct sensors ever seen: ~%.0f\n",
              seen->EstimateDistinct());
  return 0;
}
