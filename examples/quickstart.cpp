// FungusDB quickstart: create a decaying table, attach a fungus, ingest,
// advance virtual time, and run observing + consuming queries.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "fungusdb/database.h"
#include "fungusdb/fungi.h"

using namespace fungusdb;

int main() {
  Database db;

  // The paper's R(t, f, A1..An): user attributes only; the system adds
  // the insertion time `__ts` and freshness `__freshness` columns.
  Schema schema = Schema::Make({{"sensor", DataType::kInt64, false},
                                {"temp", DataType::kFloat64, false}})
                      .value();
  db.CreateTable("readings", schema).value();

  // First natural law: a periodic clock (here: hourly) applies a fungus
  // (here: 2-day retention) until data has completely disappeared.
  db.AttachFungus("readings", std::make_unique<RetentionFungus>(2 * kDay),
                  /*period=*/kHour)
      .value();

  // Ingest a reading every 10 virtual minutes for 3 days.
  for (int i = 0; i < 3 * 24 * 6; ++i) {
    db.Insert("readings",
              {Value::Int64(i % 4), Value::Float64(18.0 + i % 8)})
        .value();
    db.AdvanceTime(10 * kMinute).value();  // decay ticks run in here
  }

  std::printf("%s\n", db.Health().ToString().c_str());

  // Observing query: freshness is a queryable column.
  ResultSet fresh =
      db.ExecuteSql("SELECT sensor, count(*) AS n, avg(temp) AS t "
                    "FROM readings WHERE __freshness > 0.5 "
                    "GROUP BY sensor ORDER BY sensor")
          .value();
  std::printf("tuples with more than half their life left:\n%s\n",
              fresh.ToString().c_str());

  // Second natural law: a CONSUME query removes everything matching its
  // predicate from R — the answer set replaces the consumed extent.
  ResultSet hot =
      db.ExecuteSql("CONSUME SELECT * FROM readings WHERE temp >= 24")
          .value();
  std::printf("consumed %llu hot readings (returned %zu)\n",
              static_cast<unsigned long long>(hot.stats.rows_consumed),
              hot.num_rows());

  ResultSet again =
      db.ExecuteSql("SELECT count(*) AS n FROM readings WHERE temp >= 24")
          .value();
  std::printf("hot readings remaining after consumption: %lld\n",
              static_cast<long long>(again.at(0, 0).AsInt64()));

  std::printf("\n%s\n", db.Health().ToString().c_str());
  return 0;
}
