// The Blue-Cheese view: watch EGI eat a relation along its time axis.
// Each frame is one strip of the table in insertion order ('#' = live,
// '.' = dead, digits = partially rotten ranges) — "portions of the
// cheese turn into its rotting equivalent over time. It remains edible
// for a long time though."
//
//   ./build/examples/blue_cheese

#include <cstdio>

#include "fungusdb/fungi.h"

using namespace fungusdb;

int main() {
  TableOptions opts;
  opts.rows_per_segment = 512;
  Table cheese("cheese",
               Schema::Make({{"v", DataType::kInt64, false}}).value(),
               opts);
  constexpr uint64_t kRows = 40000;
  for (uint64_t i = 0; i < kRows; ++i) {
    cheese
        .Append({Value::Int64(static_cast<int64_t>(i))},
                static_cast<Timestamp>(i))
        .value();
  }

  EgiFungus::Params p;
  p.seeds_per_tick = 1.0;
  p.decay_step = 0.12;
  p.spread_probability = 1.0;
  p.age_bias = 2.0;
  EgiFungus egi(p);

  std::printf("EGI %s on %llu tuples\n\n", egi.Describe().c_str(),
              static_cast<unsigned long long>(kRows));
  std::printf("%-6s %-7s %-6s %s\n", "tick", "live", "spots", "time axis");
  for (int tick = 0; tick <= 280; ++tick) {
    DecayContext ctx(&cheese, tick);
    egi.Tick(ctx);
    cheese.ReclaimDeadSegments();
    if (tick % 20 == 0) {
      RotStructure rot = AnalyzeRot(cheese);
      std::printf("%-6d %-7llu %-6llu %s\n", tick,
                  static_cast<unsigned long long>(cheese.live_rows()),
                  static_cast<unsigned long long>(rot.num_spots),
                  RenderTimeAxis(cheese, 64).c_str());
    }
  }
  std::printf("\nstill edible: %llu of %llu tuples remain\n",
              static_cast<unsigned long long>(cheese.live_rows()),
              static_cast<unsigned long long>(kRows));
  return 0;
}
