// Law-2 sessionization: finished clickstream activity is periodically
// pulled out of R with CONSUME queries and distilled into per-user
// summaries — "once you take something out of R, you should distill it
// into useful knowledge".
//
//   ./build/examples/clickstream_sessions

#include <cstdio>
#include <memory>

#include "fungusdb/database.h"
#include "fungusdb/summaries.h"
#include "fungusdb/workloads.h"

using namespace fungusdb;

int main() {
  Database db;
  ClickstreamWorkload::Params wp;
  wp.num_users = 200;
  ClickstreamWorkload workload(wp);
  db.CreateTable("clicks", workload.schema()).value();

  // Consumed clicks are cooked into a per-user dwell-time rollup.
  CookSpec spec;
  spec.table_name = "clicks";
  spec.trigger = CookTrigger::kOnRot;  // fires for consumed tuples too
  spec.cellar_name = "per_user_dwell";
  spec.column = "dwell_ms";
  spec.group_by = "user_id";
  FUNGUSDB_CHECK_OK(db.AddCookSpec(spec));

  uint64_t total_consumed = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    // An hour of traffic arrives, spread over the hour...
    db.IngestPaced("clicks", workload, 5000, kHour / 5000).value();

    // ...then the sessionizer consumes everything older than 30 virtual
    // minutes: those sessions are considered finished.
    const Timestamp cutoff = db.Now() - 30 * kMinute;
    ResultSet consumed =
        db.ExecuteSql("CONSUME SELECT user_id, dwell_ms FROM clicks "
                      "WHERE __ts < " +
                      std::to_string(cutoff))
            .value();
    total_consumed += consumed.stats.rows_consumed;
    std::printf("epoch %d: extent=%llu consumed=%llu\n", epoch,
                static_cast<unsigned long long>(
                    db.GetTable("clicks").value().live_rows()),
                static_cast<unsigned long long>(
                    consumed.stats.rows_consumed));
  }

  std::printf("\ntotal consumed: %llu; table now holds only the active "
              "tail (%llu clicks)\n",
              static_cast<unsigned long long>(total_consumed),
              static_cast<unsigned long long>(
                  db.GetTable("clicks").value().live_rows()));

  const auto* rollup = static_cast<const GroupedAggregate*>(
      db.cellar().Find("per_user_dwell"));
  std::printf("\nper-user knowledge distilled from consumed sessions "
              "(%zu users), heaviest first:\n",
              rollup->num_groups());
  // Show the three users with the most consumed clicks.
  auto entries = rollup->Entries();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.second.count > b.second.count;
            });
  for (size_t i = 0; i < entries.size() && i < 3; ++i) {
    std::printf("  user %s: %llu clicks, mean dwell %.0f ms\n",
                entries[i].first.c_str(),
                static_cast<unsigned long long>(entries[i].second.count),
                entries[i].second.Mean());
  }
  return 0;
}
