// Composing decay policies: a log table where
//   * DEBUG entries rot fast while ERROR entries are preserved
//     (SemanticFungus — the "what to decay" axis),
//   * a hard byte quota caps the fridge regardless (QuotaFungus),
// and dashboards read freshness-weighted aggregates (FAVG/FCOUNT), so
// answers fade in proportion to how much of their evidence has rotted.
//
//   ./build/examples/decay_policies

#include <cstdio>
#include <memory>

#include "fungusdb/common.h"
#include "fungusdb/database.h"
#include "fungusdb/fungi.h"
#include "fungusdb/query.h"

using namespace fungusdb;

int main() {
  Database db;
  Schema schema = Schema::Make({{"level", DataType::kString, false},
                                {"latency_ms", DataType::kFloat64, false}})
                      .value();
  TableOptions topts;
  topts.rows_per_segment = 512;
  db.CreateTable("logs", schema, topts).value();

  // Policy 1: DEBUG lines lose freshness steadily (gone after ~6h of
  // one-minute ticks), ERROR lines are immortal (step 0 — a
  // preservation order).
  SemanticFungus::Params sp;
  sp.matched_step = 1.0 / 360.0;
  sp.unmatched_step = 0.0;
  auto semantic = std::make_unique<SemanticFungus>(
      ParseExpression("level = 'DEBUG'").value(), sp);

  // Policy 2: whatever else happens, the table may not exceed 1 MiB.
  auto quota = std::make_unique<QuotaFungus>(1 << 20);

  std::vector<std::unique_ptr<Fungus>> policies;
  policies.push_back(std::move(semantic));
  policies.push_back(std::move(quota));
  db.AttachFungus("logs",
                  std::make_unique<CompositeFungus>(std::move(policies)),
                  /*period=*/kMinute)
      .value();

  // Two days of logs: mostly DEBUG noise, occasional slow ERRORs.
  Rng rng(2026);
  for (int hour = 0; hour < 48; ++hour) {
    for (int i = 0; i < 500; ++i) {
      const bool is_error = rng.NextBernoulli(0.04);
      db.Insert("logs",
                {Value::String(is_error ? "ERROR" : "DEBUG"),
                 Value::Float64(is_error ? 250.0 + 300.0 * rng.NextDouble()
                                         : 5.0 + 20.0 * rng.NextDouble())})
          .value();
    }
    db.AdvanceTime(kHour).value();
  }

  const TableHandle logs = db.GetTable("logs").value();
  std::printf("after 48h: %llu of %llu log lines survive, %s\n",
              static_cast<unsigned long long>(logs.live_rows()),
              static_cast<unsigned long long>(logs.total_appended()),
              FormatBytes(logs.memory_bytes()).c_str());

  ResultSet by_level =
      db.ExecuteSql("SELECT level, count(*) AS n FROM logs "
                    "GROUP BY level ORDER BY level")
          .value();
  std::printf("%s\n", by_level.ToString().c_str());

  // Freshness-weighted dashboards: the DEBUG contribution fades as it
  // rots, so FAVG tracks the *fresh* latency picture while AVG is
  // dominated by whatever happens to still be tombstone-free.
  ResultSet latency =
      db.ExecuteSql("SELECT count(*) AS rows, fcount(*) AS effective, "
                    "avg(latency_ms) AS avg_ms, favg(latency_ms) AS favg_ms "
                    "FROM logs")
          .value();
  std::printf("latency picture:\n%s\n", latency.ToString().c_str());
  std::printf("(effective < rows because partially-rotten DEBUG lines "
              "count fractionally)\n");
  return 0;
}
