// Durability: snapshot + journal. A monitored table runs under decay
// with every input journaled; we snapshot mid-flight, keep journaling,
// "crash", and then recover the exact state by restoring the snapshot
// and replaying the journal suffix — possible because decay is
// deterministic given the attached fungi.
//
// For simplicity this example replays the *whole* journal into a fresh
// database (the snapshot path is shown separately); production code
// would snapshot periodically and truncate the journal.
//
//   ./build/examples/durability

#include <cstdio>
#include <memory>

#include "fungusdb/database.h"
#include "fungusdb/fungi.h"
#include "fungusdb/persist.h"

using namespace fungusdb;

namespace {

Schema EventSchema() {
  return Schema::Make({{"device", DataType::kInt64, false},
                       {"reading", DataType::kFloat64, false}})
      .value();
}

void AttachPolicies(Database& db) {
  // The recovery recipe: identical fungi, attached before inputs flow.
  db.CreateTable("events", EventSchema()).value();
  db.AttachFungus("events",
                  std::make_unique<RetentionFungus>(6 * kHour), kHour)
      .value();
}

}  // namespace

int main() {
  const std::string journal_path = "/tmp/fungusdb_example.journal";
  const std::string snapshot_path = "/tmp/fungusdb_example.snapshot";
  std::remove(journal_path.c_str());

  // --- Live system: journal every input. ---
  auto live = JournaledDatabase::Open({}, journal_path).value();
  AttachPolicies(live->db());
  for (int hour = 0; hour < 12; ++hour) {
    for (int i = 0; i < 50; ++i) {
      live->Insert("events", {Value::Int64(i % 5),
                              Value::Float64(hour + i * 0.1)})
          .value();
    }
    live->AdvanceTime(kHour).value();
    if (hour == 5) {
      // Mid-flight snapshot (a second recovery point).
      FUNGUSDB_CHECK_OK(SaveDatabaseSnapshot(live->db(), snapshot_path));
      std::printf("snapshot taken at t=%s\n",
                  FormatDuration(live->db().Now()).c_str());
    }
  }
  live->ExecuteSql("CONSUME SELECT * FROM events WHERE device = 0")
      .value();
  FUNGUSDB_CHECK_OK(live->Sync());

  const TableHandle t = live->db().GetTable("events").value();
  std::printf("live state:      t=%s live_rows=%llu\n",
              FormatDuration(live->db().Now()).c_str(),
              static_cast<unsigned long long>(t.live_rows()));

  // --- Crash. Recover from the journal alone. ---
  Database recovered;
  AttachPolicies(recovered);
  const uint64_t applied =
      ReplayJournal(recovered, journal_path).value();
  const TableHandle rt = recovered.GetTable("events").value();
  std::printf("journal replay:  t=%s live_rows=%llu (%llu entries)\n",
              FormatDuration(recovered.Now()).c_str(),
              static_cast<unsigned long long>(rt.live_rows()),
              static_cast<unsigned long long>(applied));
  std::printf("states match:    %s\n",
              rt.table().LiveRows() == t.table().LiveRows() ? "YES" : "NO");

  // --- Or from the mid-flight snapshot. ---
  auto from_snapshot = LoadDatabaseSnapshot(snapshot_path).value();
  std::printf("snapshot restore: t=%s live_rows=%llu "
              "(re-attach fungi, then keep going)\n",
              FormatDuration(from_snapshot->Now()).c_str(),
              static_cast<unsigned long long>(
                  from_snapshot->GetTable("events").value().live_rows()));

  std::remove(journal_path.c_str());
  std::remove(snapshot_path.c_str());
  return 0;
}
