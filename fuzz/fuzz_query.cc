// Fuzz target: SQL lexer + parser. Any byte sequence must either parse
// into a Query or fail with a clean Status — never crash, hang, or trip
// a sanitizer.

#include <cstdint>
#include <string_view>

#include "query/lexer.h"
#include "query/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 16)) return 0;  // longer inputs add no new paths
  const std::string_view sql(reinterpret_cast<const char*>(data), size);

  fungusdb::Result<std::vector<fungusdb::Token>> tokens =
      fungusdb::Tokenize(sql);
  fungusdb::Result<fungusdb::Query> query = fungusdb::ParseQuery(sql);
  // A parse can only succeed on lexable input.
  if (query.ok() && !tokens.ok()) __builtin_trap();
  return 0;
}
