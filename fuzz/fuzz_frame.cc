// Fuzz target: the fungusd wire protocol. Arbitrary bytes hit the
// frame-header and payload decoders; anything that decodes must
// re-encode and decode again to the same thing (the codec is a
// bijection on its valid range), and nothing may crash or hang —
// these decoders face the network, the one input source the database
// does not control.

#include <cstdint>
#include <string>
#include <string_view>

#include "server/wire_format.h"

using fungusdb::Result;
using fungusdb::server::DecodeFrameHeader;
using fungusdb::server::DecodeStatementRequest;
using fungusdb::server::DecodeStatementResponse;
using fungusdb::server::EncodeStatementRequest;
using fungusdb::server::EncodeStatementResponse;
using fungusdb::server::kFrameHeaderBytes;
using fungusdb::server::StatementRequest;
using fungusdb::server::StatementResponse;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  if (input.size() >= kFrameHeaderBytes) {
    // Either outcome is fine; it only must not crash.
    const auto header = DecodeFrameHeader(input.substr(0, kFrameHeaderBytes));
    (void)header;
  }

  const Result<StatementRequest> request = DecodeStatementRequest(input);
  if (request.ok()) {
    const std::string encoded = EncodeStatementRequest(request.value());
    const Result<StatementRequest> again = DecodeStatementRequest(encoded);
    if (!again.ok() ||
        again.value().request_id != request.value().request_id ||
        again.value().deadline_micros != request.value().deadline_micros ||
        again.value().statements != request.value().statements) {
      __builtin_trap();
    }
  }

  const Result<StatementResponse> response = DecodeStatementResponse(input);
  if (response.ok()) {
    const std::string encoded =
        EncodeStatementResponse(response.value());
    const Result<StatementResponse> again =
        DecodeStatementResponse(encoded);
    if (!again.ok() ||
        again.value().request_id != response.value().request_id ||
        again.value().results.size() != response.value().results.size()) {
      __builtin_trap();
    }
    for (size_t i = 0; i < again.value().results.size(); ++i) {
      const auto& a = response.value().results[i];
      const auto& b = again.value().results[i];
      if (a.ok() != b.ok()) __builtin_trap();
      if (!a.ok() && a.status().error_code() != b.status().error_code()) {
        __builtin_trap();
      }
    }
  }
  return 0;
}
