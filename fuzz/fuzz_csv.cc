// Fuzz target: CSV ingestion. Arbitrary bytes stream through CsvSource
// against a schema covering every column type; malformed records must
// stop the stream with a ParseError, never crash.

#include <cstdint>
#include <sstream>
#include <string>

#include "pipeline/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 18)) return 0;
  const std::string input(reinterpret_cast<const char*>(data), size);

  static const fungusdb::Schema schema =
      fungusdb::Schema::Make({{"i", fungusdb::DataType::kInt64, false},
                              {"f", fungusdb::DataType::kFloat64, true},
                              {"s", fungusdb::DataType::kString, true},
                              {"b", fungusdb::DataType::kBool, true},
                              {"t", fungusdb::DataType::kTimestamp, true}})
          .value();

  std::istringstream stream(input);
  fungusdb::CsvSource source(&stream, schema);
  while (source.Next().has_value()) {
  }
  // After the stream dries, status() is either OK (end of input) or a
  // ParseError; both are valid outcomes for garbage input.
  if (!source.status().ok() &&
      source.status().code() != fungusdb::StatusCode::kParseError) {
    __builtin_trap();
  }
  return 0;
}
