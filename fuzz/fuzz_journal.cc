// Fuzz target: journal frame decoding + replay. Arbitrary bytes go
// through the same path crash recovery uses: decode every intact frame,
// then replay the decoded entries into a fresh database. Torn frames,
// bad checksums and malformed payloads must all surface as a clean stop
// or Status error, never as a crash.

#include <cstdint>
#include <string>

#include "core/database.h"
#include "persist/journal.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  std::string bytes(reinterpret_cast<const char*>(data), size);

  std::unique_ptr<fungusdb::JournalReader> reader =
      fungusdb::JournalReader::FromBytes(std::move(bytes));
  fungusdb::Database db;
  uint64_t entries = 0;
  while (std::optional<fungusdb::JournalEntry> entry = reader->Next()) {
    if (++entries > 4096) break;  // bound replay work per input
    fungusdb::Status status;
    switch (entry->kind) {
      case fungusdb::JournalEntry::Kind::kCreateTable:
        status = db.CreateTable(entry->table_name, entry->schema,
                                entry->table_options)
                     .status();
        break;
      case fungusdb::JournalEntry::Kind::kDropTable:
        status = db.DropTable(entry->table_name);
        break;
      case fungusdb::JournalEntry::Kind::kInsert:
        status = db.Insert(entry->table_name, entry->values).status();
        break;
      case fungusdb::JournalEntry::Kind::kAdvanceTime:
        status = db.AdvanceTime(entry->advance).status();
        break;
      case fungusdb::JournalEntry::Kind::kSql:
        status = db.ExecuteSql(entry->sql).status();
        break;
    }
    // Entries the database rejects are fine (the fuzzer invents
    // tables that do not exist); the point is that nothing crashes.
    (void)status;
  }
  return 0;
}
