// File-driver main for fuzz harnesses built without libFuzzer (gcc has
// no -fsanitize=fuzzer). Feeds each argv file — or stdin when none —
// to LLVMFuzzerTestOneInput, so harnesses still build and smoke-run on
// every toolchain; mutation-based fuzzing needs the clang CI job.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunOne(const std::string& input, const char* label) {
  const int rc = LLVMFuzzerTestOneInput(
      reinterpret_cast<const uint8_t*>(input.data()), input.size());
  std::printf("%s: %zu bytes -> %d\n", label, input.size(), rc);
  return rc == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    const std::string input((std::istreambuf_iterator<char>(std::cin)),
                            std::istreambuf_iterator<char>());
    return RunOne(input, "<stdin>");
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      failures = 1;
      continue;
    }
    const std::string input((std::istreambuf_iterator<char>(file)),
                            std::istreambuf_iterator<char>());
    failures |= RunOne(input, argv[i]);
  }
  return failures;
}
