#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_COMMON_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_COMMON_H_

/// Public surface: small utilities examples and tools lean on —
/// deterministic RNG helpers, string formatting, and the span tracer.
/// Thin re-export over src/ (see status.h for the rationale).

#include "common/random.h"
#include "common/string_util.h"
#include "common/trace.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_COMMON_H_
