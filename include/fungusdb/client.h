#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_CLIENT_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_CLIENT_H_

/// Public surface: the network client for a fungusd server. Thin
/// re-export over src/ (see status.h for the rationale). The server
/// itself is NOT public API — the daemons reach it through an explicit
/// lint allowlist.

#include "fungusdb/result.h"
#include "server/client.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_CLIENT_H_
