#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_DATABASE_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_DATABASE_H_

/// Public surface: fungusdb::Database — tables, fungi on the periodic
/// clock, queries, cooking, verification — plus Session for concurrent
/// reads. Thin re-export over src/ (see status.h for the rationale).

#include "core/database.h"
#include "core/session.h"
#include "fungusdb/result.h"
#include "fungusdb/table_handle.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_DATABASE_H_
