#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_STATUS_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_STATUS_H_

/// Public surface: fungusdb::Status and the status helper macros.
///
/// Thin re-export — the implementation lives in src/ and may move;
/// applications, examples and tools include only "fungusdb/..." paths
/// (the `public-api` lint rule enforces this), so this indirection is
/// what lets the internal layout change without breaking users.

#include "common/status.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_STATUS_H_
