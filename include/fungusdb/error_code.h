#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_ERROR_CODE_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_ERROR_CODE_H_

#include <cstdint>
#include <string_view>

namespace fungusdb {

/// Stable public error numbers for FungusDB. These values cross the
/// wire protocol and appear in client-visible output ("E:1203
/// TableNotFound"), so they are part of the public API: never renumber
/// or reuse a value — add new codes at the end of their block instead.
///
/// Blocks:
///   0          success
///   1000-1099  invalid requests (bad arguments, bad state)
///   1100-1199  statement / input parsing
///   1200-1299  catalog lookups
///   2000-2099  resource limits, backpressure, deadlines
///   2100-2199  unsupported operations
///   2200-2299  internal faults
///   2300-2399  wire protocol / transport
enum class ErrorCode : uint16_t {
  kOk = 0,

  kInvalidArgument = 1001,
  kOutOfRange = 1002,
  kFailedPrecondition = 1003,

  kParseError = 1101,
  kTypeMismatch = 1102,

  kNotFound = 1201,
  kAlreadyExists = 1202,
  kTableNotFound = 1203,
  kColumnNotFound = 1204,

  kResourceExhausted = 2001,
  kOverloaded = 2002,
  kTimeout = 2003,
  kShuttingDown = 2004,

  kUnimplemented = 2101,

  kInternal = 2201,
  kDataCorruption = 2202,

  kWireFormat = 2301,
  kConnectionClosed = 2302,
};

/// Canonical name of an error code, e.g. "TableNotFound"; "Unknown" for
/// values outside the enum (a newer peer may send codes we don't know).
std::string_view ErrorCodeName(ErrorCode code);

/// Validates a raw wire value: known codes map to themselves, anything
/// else collapses to kInternal so decoders never materialize an
/// out-of-enum value.
ErrorCode ErrorCodeFromWire(uint16_t raw);

}  // namespace fungusdb

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_ERROR_CODE_H_
