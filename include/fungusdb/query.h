#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_QUERY_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_QUERY_H_

/// Public surface: the statement parser for the FungusDB SQL dialect
/// (programmatic Query construction included via the parser's types).
/// Thin re-export over src/ (see status.h for the rationale).

#include "fungusdb/result.h"
#include "query/parser.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_QUERY_H_
