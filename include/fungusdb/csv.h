#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_CSV_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_CSV_H_

/// Public surface: the CSV record source for ingestion pipelines. Thin
/// re-export over src/ (see status.h for the rationale).

#include "pipeline/csv.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_CSV_H_
