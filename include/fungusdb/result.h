#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_RESULT_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_RESULT_H_

/// Public surface: fungusdb::Result<T> and FUNGUSDB_ASSIGN_OR_RETURN /
/// FUNGUSDB_RETURN_IF_ERROR. Thin re-export over src/ (see status.h
/// for the rationale).

#include "common/result.h"
#include "fungusdb/status.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_RESULT_H_
