#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_TABLE_HANDLE_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_TABLE_HANDLE_H_

/// Public surface: fungusdb::TableHandle — the read-only per-table view
/// returned by Database::CreateTable/GetTable — plus the storage types
/// its accessors traffic in (Schema, Value, RowId, TableOptions). Thin
/// re-export over src/ (see status.h for the rationale).

#include "core/table_handle.h"
#include "fungusdb/result.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_TABLE_HANDLE_H_
