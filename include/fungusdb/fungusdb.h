#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_FUNGUSDB_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_FUNGUSDB_H_

/// Umbrella header for the FungusDB public API.
///
/// Embedders include this (or a subset of the sibling headers) and link
/// against the fungusdb library. Everything under src/ is an
/// implementation detail; the `public-api` lint rule keeps examples/
/// and tools/ honest about that boundary.
///
/// Sibling headers, for finer-grained includes:
///   fungusdb/status.h        — Status / error codes
///   fungusdb/result.h        — Result<T>
///   fungusdb/database.h      — Database, Session, TableOptions
///   fungusdb/table_handle.h  — typed table accessors
///   fungusdb/fungi.h         — decay operators + rot analysis
///   fungusdb/query.h         — statement parser
///   fungusdb/persist.h       — snapshot + journal durability
///   fungusdb/summaries.h     — summary kinds + table stats
///   fungusdb/workloads.h     — synthetic record sources
///   fungusdb/csv.h           — CSV ingestion
///   fungusdb/client.h        — network client for fungusd
///   fungusdb/common.h        — RNG / string / trace utilities

#include "fungusdb/database.h"
#include "fungusdb/error_code.h"
#include "fungusdb/fungi.h"
#include "fungusdb/persist.h"
#include "fungusdb/query.h"
#include "fungusdb/result.h"
#include "fungusdb/status.h"
#include "fungusdb/summaries.h"
#include "fungusdb/table_handle.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_FUNGUSDB_H_
