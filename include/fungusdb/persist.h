#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_PERSIST_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_PERSIST_H_

/// Public surface: durability — snapshot save/load and the journaled
/// facade. Thin re-export over src/ (see status.h for the rationale).
/// The fsck/audit internals stay private; `funguscheck` reaches them
/// through an explicit lint allowlist.

#include "fungusdb/database.h"
#include "persist/journal.h"
#include "persist/snapshot.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_PERSIST_H_
