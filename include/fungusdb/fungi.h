#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_FUNGI_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_FUNGI_H_

/// Public surface: the decay operators — every concrete Fungus, the
/// name-based factory, and the rot-analysis report. Thin re-export over
/// src/ (see status.h for the rationale).

#include "fungus/composite_fungus.h"
#include "fungus/egi_fungus.h"
#include "fungus/exponential_fungus.h"
#include "fungus/fungus.h"
#include "fungus/fungus_factory.h"
#include "fungus/quota_fungus.h"
#include "fungus/retention_fungus.h"
#include "fungus/rot_analysis.h"
#include "fungus/semantic_fungus.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_FUNGI_H_
