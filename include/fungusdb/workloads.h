#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_WORKLOADS_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_WORKLOADS_H_

/// Public surface: the synthetic record sources used by examples and
/// benchmarks. Thin re-export over src/ (see status.h for the
/// rationale).

#include "workload/clickstream_workload.h"
#include "workload/iot_workload.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_WORKLOADS_H_
