#ifndef FUNGUSDB_INCLUDE_FUNGUSDB_SUMMARIES_H_
#define FUNGUSDB_INCLUDE_FUNGUSDB_SUMMARIES_H_

/// Public surface: the summary kinds the Kitchen cooks rotting tuples
/// into, plus per-table statistics. Thin re-export over src/ (see
/// status.h for the rationale).

#include "summary/grouped_aggregate.h"
#include "summary/histogram_sketch.h"
#include "summary/hyperloglog.h"
#include "summary/table_stats.h"

#endif  // FUNGUSDB_INCLUDE_FUNGUSDB_SUMMARIES_H_
